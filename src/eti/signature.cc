#include "eti/signature.h"

#include "text/qgram.h"

namespace fuzzymatch {

namespace {

std::vector<TokenCoordinate> MakeCoordinatesImpl(
    const MinHasher& hasher, bool index_tokens, bool full_qgrams,
    std::string_view token, double token_weight) {
  std::vector<TokenCoordinate> out;
  const std::vector<std::string> sig =
      full_qgrams ? QGramSet(token, hasher.q()) : hasher.Signature(token);
  if (token.size() > kMaxIndexedTokenLength) {
    // Degenerate giant token: q-gram coordinates only (the whole-token key
    // would exceed the index's entry limit).
    index_tokens = false;
  }
  if (index_tokens) {
    if (sig.empty()) {
      // Token-only strategy (Q+T_0 for long tokens): full weight on the
      // token coordinate.
      out.push_back({std::string(token), 0, token_weight});
      return out;
    }
    out.push_back({std::string(token), 0, token_weight / 2.0});
    const double share =
        token_weight / (2.0 * static_cast<double>(sig.size()));
    for (uint32_t j = 0; j < sig.size(); ++j) {
      out.push_back({sig[j], full_qgrams ? 1 : j + 1, share});
    }
    return out;
  }
  if (sig.empty()) {
    return out;  // Q_0 would index nothing; rejected at build time.
  }
  const double share = token_weight / static_cast<double>(sig.size());
  for (uint32_t j = 0; j < sig.size(); ++j) {
    out.push_back({sig[j], full_qgrams ? 1 : j + 1, share});
  }
  return out;
}

}  // namespace

std::vector<TokenCoordinate> MakeTokenCoordinates(const MinHasher& hasher,
                                                  const EtiParams& params,
                                                  std::string_view token,
                                                  double token_weight) {
  return MakeCoordinatesImpl(hasher, params.index_tokens,
                             params.full_qgram_index, token, token_weight);
}

std::vector<TokenCoordinate> MakeTokenCoordinates(const MinHasher& hasher,
                                                  bool index_tokens,
                                                  std::string_view token,
                                                  double token_weight) {
  return MakeCoordinatesImpl(hasher, index_tokens, /*full_qgrams=*/false,
                             token, token_weight);
}

void AppendTokenCoordinates(const MinHasher& hasher, const EtiParams& params,
                            std::string_view token, double token_weight,
                            std::string* arena,
                            std::vector<ArenaTokenCoordinate>* out) {
  const std::vector<std::string> sig = params.full_qgram_index
                                           ? QGramSet(token, hasher.q())
                                           : hasher.Signature(token);
  const bool index_tokens =
      params.index_tokens && token.size() <= kMaxIndexedTokenLength;
  const auto append = [&](std::string_view gram, uint32_t coordinate,
                          double share) {
    ArenaTokenCoordinate tc;
    tc.gram_offset = static_cast<uint32_t>(arena->size());
    tc.gram_len = static_cast<uint32_t>(gram.size());
    tc.coordinate = coordinate;
    tc.weight_share = share;
    arena->append(gram);
    out->push_back(tc);
  };
  if (index_tokens) {
    if (sig.empty()) {
      append(token, 0, token_weight);
      return;
    }
    append(token, 0, token_weight / 2.0);
    const double share =
        token_weight / (2.0 * static_cast<double>(sig.size()));
    for (uint32_t j = 0; j < sig.size(); ++j) {
      append(sig[j], params.full_qgram_index ? 1 : j + 1, share);
    }
    return;
  }
  if (sig.empty()) {
    return;
  }
  const double share = token_weight / static_cast<double>(sig.size());
  for (uint32_t j = 0; j < sig.size(); ++j) {
    append(sig[j], params.full_qgram_index ? 1 : j + 1, share);
  }
}

}  // namespace fuzzymatch

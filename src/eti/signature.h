// Signature coordinates of a token: the (gram, coordinate) pairs a token
// contributes to the ETI, and the per-coordinate weight shares used at
// query time.
//
// Q strategy: coordinates 1..H carry the min-hash q-grams, each probing
// with weight w(t)/|mh(t)|. Q+T (Section 5.1) prepends the token itself as
// coordinate 0 and splits the token's importance equally between the token
// and its signature: w(t)/2 for the token, w(t)/(2·|mh(t)|) per q-gram.
// Tokens no longer than q have mh(t) = [t] (a single coordinate).
//
// The full-q-gram baseline mode (EtiParams::full_qgram_index) replaces the
// min-hash sample with ALL q-grams of the token, every one on coordinate 1
// with share w(t)/|QG(t)|.

#ifndef FUZZYMATCH_ETI_SIGNATURE_H_
#define FUZZYMATCH_ETI_SIGNATURE_H_

#include <string>
#include <string_view>
#include <vector>

#include "eti/eti.h"
#include "text/minhash.h"

namespace fuzzymatch {

/// One ETI coordinate of one token.
struct TokenCoordinate {
  std::string gram;
  uint32_t coordinate;  // 0 = whole token (Q+T); 1..H = min-hash q-grams
  double weight_share;  // shares of one token sum to its weight
};

/// Tokens longer than this are not indexed as whole-token (coordinate 0)
/// rows — the ETI's clustered key must stay within the B+-tree entry
/// limit. Such tokens still index through their q-gram signature, and the
/// final fms verification is unaffected.
inline constexpr size_t kMaxIndexedTokenLength = 512;

/// Expands a token into its ETI coordinates under `params` (`hasher` must
/// be configured with the same q/H/seed). `token_weight` is w(t) (pass any
/// value when only the coordinates matter, e.g. during index build).
std::vector<TokenCoordinate> MakeTokenCoordinates(const MinHasher& hasher,
                                                  const EtiParams& params,
                                                  std::string_view token,
                                                  double token_weight);

/// Back-compat overload taking just the Q+T flag (min-hash mode only).
std::vector<TokenCoordinate> MakeTokenCoordinates(const MinHasher& hasher,
                                                  bool index_tokens,
                                                  std::string_view token,
                                                  double token_weight);

/// One ETI coordinate whose gram bytes live in a caller-owned arena —
/// the allocation-free shape of the query hot path. Offsets (not
/// pointers/views) stay valid across arena reallocation.
struct ArenaTokenCoordinate {
  uint32_t gram_offset = 0;
  uint32_t gram_len = 0;
  uint32_t coordinate = 0;
  double weight_share = 0.0;
};

/// Arena variant of MakeTokenCoordinates: appends each coordinate's gram
/// bytes to `*arena` and its offset record to `*out` instead of handing
/// back per-gram strings.
void AppendTokenCoordinates(const MinHasher& hasher, const EtiParams& params,
                            std::string_view token, double token_weight,
                            std::string* arena,
                            std::vector<ArenaTokenCoordinate>* out);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_ETI_SIGNATURE_H_

#include "eti/eti_builder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "eti/signature.h"
#include "eti/tid_list.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "storage/external_sort.h"
#include "storage/key_codec.h"

namespace fuzzymatch {

namespace {

/// One decoded pre-ETI row.
struct PreEtiRow {
  std::string gram;
  uint32_t coordinate;
  uint32_t column;
  Tid tid;
};

std::string EncodePreEtiRow(std::string_view gram, uint32_t coordinate,
                            uint32_t column, Tid tid) {
  KeyEncoder enc;
  enc.AppendString(gram).AppendU32(coordinate).AppendU32(column).AppendU32(
      tid);
  return enc.Take();
}

Result<PreEtiRow> DecodePreEtiRow(std::string_view record) {
  KeyDecoder dec(record);
  PreEtiRow row;
  FM_ASSIGN_OR_RETURN(row.gram, dec.ReadString());
  FM_ASSIGN_OR_RETURN(row.coordinate, dec.ReadU32());
  FM_ASSIGN_OR_RETURN(row.column, dec.ReadU32());
  FM_ASSIGN_OR_RETURN(row.tid, dec.ReadU32());
  if (!dec.Done()) {
    return Status::Corruption("trailing bytes in pre-ETI row");
  }
  return row;
}

/// Accumulates one [QGram, Coordinate, Column] group from the sorted
/// pre-ETI stream and emits it as an ETI entry. Tid-lists that reach the
/// stop threshold are dropped and the group is marked as a stop q-gram
/// (NULL tid-list), still recording the true frequency. Shared by the
/// serial writer and the per-partition group encoders of the parallel
/// build, so the two paths cannot diverge.
class GroupAccumulator {
 public:
  using Emit = std::function<Status(const std::string& gram,
                                    uint32_t coordinate, uint32_t column,
                                    EtiEntry entry)>;

  GroupAccumulator(uint32_t stop_threshold, Emit emit)
      : stop_threshold_(stop_threshold), emit_(std::move(emit)) {}

  Status Consume(const PreEtiRow& row) {
    if (!open_ || row.gram != gram_ || row.coordinate != coordinate_ ||
        row.column != column_) {
      FM_RETURN_IF_ERROR(Flush());
      open_ = true;
      gram_ = row.gram;
      coordinate_ = row.coordinate;
      column_ = row.column;
      frequency_ = 0;
      tids_.clear();
      last_tid_ = 0;
    }
    // Sorted input: duplicates (same token twice in one column of one
    // tuple) are adjacent.
    if (frequency_ > 0 && row.tid == last_tid_) {
      return Status::OK();
    }
    ++frequency_;
    last_tid_ = row.tid;
    if (frequency_ <= stop_threshold_ && frequency_ == tids_.size() + 1) {
      tids_.push_back(row.tid);
    }
    if (frequency_ > stop_threshold_) {
      tids_.clear();  // stop q-gram: keep counting, drop the list
    }
    return Status::OK();
  }

  Status Flush() {
    if (!open_) {
      return Status::OK();
    }
    EtiEntry entry;
    entry.frequency = frequency_;
    entry.is_stop = frequency_ > stop_threshold_;
    if (!entry.is_stop) {
      entry.tids = std::move(tids_);
    }
    stop_qgrams_ += entry.is_stop ? 1 : 0;
    ++eti_rows_;
    FM_RETURN_IF_ERROR(emit_(gram_, coordinate_, column_, std::move(entry)));
    tids_.clear();
    open_ = false;
    return Status::OK();
  }

  uint64_t eti_rows() const { return eti_rows_; }
  uint64_t stop_qgrams() const { return stop_qgrams_; }

 private:
  uint32_t stop_threshold_;
  Emit emit_;

  bool open_ = false;
  std::string gram_;
  uint32_t coordinate_ = 0;
  uint32_t column_ = 0;
  uint32_t frequency_ = 0;
  Tid last_tid_ = 0;
  std::vector<Tid> tids_;
  uint64_t eti_rows_ = 0;
  uint64_t stop_qgrams_ = 0;
};

/// Appends one finished group to the ETI relation and its clustered
/// index. All calls must arrive in ascending key order — this is the
/// single ordered writer both build paths funnel into.
Status WriteEncodedEtiRow(Table* eti_table, BPlusTree* eti_index,
                          const std::string& key, const Row& row) {
  FM_FAIL_POINT("eti_build.write_row");
  FM_ASSIGN_OR_RETURN(const Table::InsertInfo info,
                      eti_table->InsertWithLocation(row));
  return eti_index->Insert(key, info.rid.Encode());
}

Status WriteEtiRow(Table* eti_table, BPlusTree* eti_index,
                   const std::string& gram, uint32_t coordinate,
                   uint32_t column, const EtiEntry& entry) {
  return WriteEncodedEtiRow(eti_table, eti_index,
                            Eti::IndexKey(gram, coordinate, column),
                            Eti::EncodeRow(gram, coordinate, column, entry));
}

std::atomic<uint64_t> g_probe_counter{0};

/// Resolves the spill directory (Options::temp_dir semantics) and probes
/// it for writability so a full or read-only disk fails here, naming the
/// directory, instead of as a bare fopen error mid-sort.
Result<std::string> ResolveTempDir(Database* db,
                                   const std::string& configured) {
  std::string dir = configured;
  if (dir.empty()) {
    const std::string& db_path = db->path();
    if (!db_path.empty()) {
      const size_t slash = db_path.find_last_of('/');
      dir = slash == std::string::npos ? std::string(".")
                                       : db_path.substr(0, slash);
      if (dir.empty()) {
        dir = "/";  // database file sits at the filesystem root
      }
    } else {
      const char* tmpdir = std::getenv("TMPDIR");
      dir = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
    }
  }
  const std::string probe = StringPrintf(
      "%s/fm_spill_probe_%d_%llu.tmp", dir.c_str(), ::getpid(),
      static_cast<unsigned long long>(
          g_probe_counter.fetch_add(1, std::memory_order_relaxed)));
  const int fd = ::open(probe.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0600);
  if (fd < 0) {
    return Status::IOError(StringPrintf(
        "ETI spill directory '%s' is not writable: %s (set "
        "EtiBuilder::Options::temp_dir to a writable directory)",
        dir.c_str(), std::strerror(errno)));
  }
  ::close(fd);
  ::unlink(probe.c_str());
  return dir;
}

void MirrorBuildStats(const EtiBuildStats& stats) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("eti_build.threads")->Set(stats.build_threads);
  reg.GetGauge("eti_build.scan_seconds")->Set(stats.scan_seconds);
  reg.GetGauge("eti_build.sort_seconds")->Set(stats.sort_seconds);
  reg.GetGauge("eti_build.merge_seconds")->Set(stats.merge_seconds);
  reg.GetGauge("eti_build.total_seconds")->Set(stats.total_seconds);
  reg.GetCounter("eti_build.reference_tuples")
      ->Increment(stats.reference_tuples);
  reg.GetCounter("eti_build.pre_eti_rows")->Increment(stats.pre_eti_rows);
  reg.GetCounter("eti_build.eti_rows")->Increment(stats.eti_rows);
  reg.GetCounter("eti_build.stop_qgrams")->Increment(stats.stop_qgrams);
  reg.GetCounter("eti_build.spilled_runs")->Increment(stats.spilled_runs);
}

// ---------------------------------------------------------------------------
// Parallel pipeline (DESIGN.md 5f)
// ---------------------------------------------------------------------------

/// Seed of the hash that routes a pre-ETI row to a partition sorter. The
/// partition count varies with build_threads and the output is re-merged
/// into global key order, so the value only affects load balance — but it
/// must not depend on process state (the CI buildcheck compares builds
/// across processes).
constexpr uint64_t kPartitionSeed = 0x705a'7271'6d65'7469ULL;

/// Records handed from scan workers to a partition sorter per batch.
constexpr size_t kScanChunkBytes = 256u << 10;

/// Encoded ETI rows handed from a group encoder to the ordered writer.
constexpr size_t kGroupBatchRows = 512;

/// Bounded handoff of batches between pipeline stages. Close() signals
/// end of input; Cancel() aborts the build and unblocks both sides.
template <typename T>
class BoundedBatchQueue {
 public:
  explicit BoundedBatchQueue(size_t capacity) : capacity_(capacity) {}

  /// False when the build was cancelled (the batch is dropped).
  bool Push(T batch) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return cancelled_ || batches_.size() < capacity_;
    });
    if (cancelled_) {
      return false;
    }
    batches_.push_back(std::move(batch));
    not_empty_.notify_one();
    return true;
  }

  /// False when the queue is closed and drained, or cancelled.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] {
      return cancelled_ || closed_ || !batches_.empty();
    });
    if (cancelled_ || batches_.empty()) {
      return false;
    }
    *out = std::move(batches_.front());
    batches_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
  }

  void Cancel() {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> batches_;
  bool closed_ = false;
  bool cancelled_ = false;
};

using RecordChunk = std::vector<std::string>;

/// One encoded ETI row plus its clustered-index key, produced by a group
/// encoder and consumed by the ordered writer.
struct EtiRowOut {
  std::string key;
  Row row;
};

using EtiRowBatch = std::vector<EtiRowOut>;

/// Per-scan-worker token-frequency tally, merged into the IdfWeights
/// cache at the post-scan barrier (counts add commutatively, so the merge
/// is deterministic regardless of thread timing).
struct WorkerTally {
  uint64_t tuples = 0;
  uint64_t pre_eti_rows = 0;
  /// counts[column][token] = distinct reference tuples containing token.
  std::vector<std::unordered_map<std::string, uint32_t>> counts;

  void AddTuple(const TokenizedTuple& tokens,
                std::vector<std::string>* scratch) {
    ++tuples;
    if (tokens.size() > counts.size()) {
      counts.resize(tokens.size());
    }
    for (uint32_t col = 0; col < tokens.size(); ++col) {
      scratch->assign(tokens[col].begin(), tokens[col].end());
      std::sort(scratch->begin(), scratch->end());
      scratch->erase(std::unique(scratch->begin(), scratch->end()),
                     scratch->end());
      for (const auto& token : *scratch) {
        ++counts[col][token];
      }
    }
  }
};

/// Streams one partition's sorted row batches to the ordered writer.
class MergeCursor {
 public:
  explicit MergeCursor(BoundedBatchQueue<EtiRowBatch>* queue)
      : queue_(queue) {}

  /// Positions on the next row; false once the partition is exhausted.
  bool Advance() {
    ++pos_;
    while (pos_ >= batch_.size()) {
      if (!queue_->Pop(&batch_)) {
        return false;
      }
      pos_ = 0;
    }
    return true;
  }

  EtiRowOut& current() { return batch_[pos_]; }

 private:
  BoundedBatchQueue<EtiRowBatch>* queue_;
  EtiRowBatch batch_;
  // Starts one past an empty batch so the first Advance() pulls batch 0.
  size_t pos_ = static_cast<size_t>(-1);
};

/// Shared abort switch: the first failure wins, every queue is cancelled
/// so no stage stays blocked, and all workers drain out.
class BuildAbort {
 public:
  void RegisterQueue(std::function<void()> cancel) {
    cancels_.push_back(std::move(cancel));
  }

  void Fail(Status status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) {
        first_error_ = std::move(status);
      }
    }
    failed_.store(true, std::memory_order_release);
    for (const auto& cancel : cancels_) {
      cancel();
    }
  }

  bool failed() const { return failed_.load(std::memory_order_acquire); }

  Status first_error() {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

 private:
  std::mutex mu_;
  Status first_error_;
  std::atomic<bool> failed_{false};
  // Registered before any thread starts; read-only afterwards.
  std::vector<std::function<void()>> cancels_;
};

/// The parallel build pipeline. `workers` >= 2; the caller has already
/// created the (empty) ETI table/index, persisted the params, and
/// resolved the spill directory.
Status ParallelBuild(Table* ref, Table* eti_table, BPlusTree* eti_index,
                     const EtiBuilder::Options& options,
                     const std::string& temp_dir, size_t workers,
                     IdfWeights::Builder* weights_builder,
                     EtiBuildStats* stats) {
  const EtiParams& params = options.params;
  const size_t kPartitions = workers;

  Timer phase_timer;
  BuildAbort abort;

  // Stage plumbing. Chunk queues carry pre-ETI records from scan workers
  // to partition sorters; out queues carry encoded ETI rows from group
  // encoders to the ordered writer.
  std::vector<std::unique_ptr<BoundedBatchQueue<RecordChunk>>> chunk_queues;
  std::vector<std::unique_ptr<BoundedBatchQueue<EtiRowBatch>>> out_queues;
  for (size_t p = 0; p < kPartitions; ++p) {
    chunk_queues.push_back(
        std::make_unique<BoundedBatchQueue<RecordChunk>>(4));
    out_queues.push_back(std::make_unique<BoundedBatchQueue<EtiRowBatch>>(4));
  }
  for (size_t p = 0; p < kPartitions; ++p) {
    abort.RegisterQueue([q = chunk_queues[p].get()] { q->Cancel(); });
    abort.RegisterQueue([q = out_queues[p].get()] { q->Cancel(); });
  }

  // One sorter per partition; the memory budget is shared, as in the
  // serial build.
  const size_t per_sorter_budget =
      std::max<size_t>(options.sort_memory_bytes / kPartitions, 4096);
  std::vector<std::unique_ptr<ExternalSorter>> sorters;
  for (size_t p = 0; p < kPartitions; ++p) {
    ExternalSorter::Options sort_options;
    sort_options.memory_budget_bytes = per_sorter_budget;
    sort_options.temp_dir = temp_dir;
    sorters.push_back(std::make_unique<ExternalSorter>(sort_options));
  }

  // --- Phase 1: parallel scan + pipelined partition sorting. -------------
  //
  // Scan worker w tokenizes and min-hashes the tuples with tid % N == w
  // (disjoint ranges) and routes each pre-ETI record to the partition
  // owning its [QGram, Coordinate, Column] group; sorter feeder p drains
  // partition p's queue so run sorting and spill writes stay off the scan
  // workers' critical path.
  std::vector<WorkerTally> tallies(workers);
  std::vector<std::thread> feeders;
  for (size_t p = 0; p < kPartitions; ++p) {
    feeders.emplace_back([&, p] {
      RecordChunk chunk;
      while (chunk_queues[p]->Pop(&chunk)) {
        for (const auto& record : chunk) {
          const Status added = sorters[p]->Add(record);
          if (!added.ok()) {
            abort.Fail(added);
            return;
          }
        }
        chunk.clear();
      }
    });
  }

  std::vector<std::thread> scanners;
  for (size_t w = 0; w < workers; ++w) {
    scanners.emplace_back([&, w] {
      const Tokenizer tokenizer(params.delimiters);
      const MinHasher hasher(params.q, params.signature_size,
                             params.minhash_seed);
      WorkerTally& tally = tallies[w];
      std::vector<std::string> dedup_scratch;
      std::vector<RecordChunk> chunks(kPartitions);
      std::vector<size_t> chunk_bytes(kPartitions, 0);
      const auto flush = [&](size_t p) {
        if (chunks[p].empty()) {
          return true;
        }
        if (!chunk_queues[p]->Push(std::move(chunks[p]))) {
          return false;
        }
        chunks[p] = RecordChunk();
        chunk_bytes[p] = 0;
        return true;
      };

      Table::Scanner scanner = ref->Scan();
      Tid tid;
      Row row;
      for (;;) {
        if (abort.failed()) {
          return;
        }
        const Result<bool> more = scanner.Next(&tid, &row);
        if (!more.ok()) {
          abort.Fail(more.status());
          return;
        }
        if (!*more) {
          break;
        }
        if (tid % workers != w) {
          continue;
        }
        const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
        tally.AddTuple(tokens, &dedup_scratch);
        for (uint32_t col = 0; col < tokens.size(); ++col) {
          for (const auto& token : tokens[col]) {
            for (const TokenCoordinate& tc : MakeTokenCoordinates(
                     hasher, params, token, /*token_weight=*/0)) {
              KeyEncoder enc;
              enc.AppendString(tc.gram)
                  .AppendU32(tc.coordinate)
                  .AppendU32(col);
              const size_t p =
                  Hash64(enc.key(), kPartitionSeed) % kPartitions;
              enc.AppendU32(tid);
              std::string record = enc.Take();
              chunk_bytes[p] += record.size();
              chunks[p].push_back(std::move(record));
              ++tally.pre_eti_rows;
              if (chunk_bytes[p] >= kScanChunkBytes && !flush(p)) {
                return;
              }
            }
          }
        }
      }
      for (size_t p = 0; p < kPartitions; ++p) {
        if (!flush(p)) {
          return;
        }
      }
    });
  }

  for (auto& t : scanners) {
    t.join();
  }

  // Frequency-merge barrier: fold the per-worker tallies into the shared
  // IdfWeights cache. Counts are additive, so the result is identical to
  // the serial scan's cache regardless of worker interleaving.
  for (const WorkerTally& tally : tallies) {
    weights_builder->AddTupleCount(tally.tuples);
    stats->reference_tuples += tally.tuples;
    stats->pre_eti_rows += tally.pre_eti_rows;
    for (uint32_t col = 0; col < tally.counts.size(); ++col) {
      for (const auto& [token, count] : tally.counts[col]) {
        weights_builder->AddTokenCount(token, col, count);
      }
    }
  }
  stats->scan_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();
  if (options.on_scan_complete) {
    options.on_scan_complete();
  }

  for (auto& q : chunk_queues) {
    q->Close();
  }
  for (auto& t : feeders) {
    t.join();
  }
  stats->sort_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  if (abort.failed()) {
    return abort.first_error();
  }

  for (const auto& sorter : sorters) {
    stats->spilled_runs += sorter->spilled_runs();
  }

  // --- Phase 2: parallel grouping/encoding, single ordered writer. -------
  //
  // Partitions are disjoint in the group key, so each can be merged,
  // grouped and encoded independently; the writer k-way-merges the
  // partition streams by clustered key, which is exactly the serial
  // build's row order (the pre-ETI sort key extends the group key), so
  // the persisted relation and index come out byte-identical.
  std::vector<uint64_t> rows_out(kPartitions, 0);
  std::vector<uint64_t> stops_out(kPartitions, 0);
  std::vector<std::thread> groupers;
  for (size_t p = 0; p < kPartitions; ++p) {
    groupers.emplace_back([&, p] {
      // Whatever path exits this worker, the writer must not block on an
      // open queue.
      struct Closer {
        BoundedBatchQueue<EtiRowBatch>* q;
        ~Closer() { q->Close(); }
      } closer{out_queues[p].get()};

      const Result<std::unique_ptr<SortedStream>> stream =
          sorters[p]->Finish();
      if (!stream.ok()) {
        abort.Fail(stream.status());
        return;
      }
      EtiRowBatch batch;
      batch.reserve(kGroupBatchRows);
      GroupAccumulator acc(
          params.stop_qgram_threshold,
          [&](const std::string& gram, uint32_t coordinate, uint32_t column,
              EtiEntry entry) -> Status {
            EtiRowOut out;
            out.key = Eti::IndexKey(gram, coordinate, column);
            out.row = Eti::EncodeRow(gram, coordinate, column, entry);
            batch.push_back(std::move(out));
            if (batch.size() >= kGroupBatchRows) {
              if (!out_queues[p]->Push(std::move(batch))) {
                return Status::Internal("eti build aborted");
              }
              batch = EtiRowBatch();
              batch.reserve(kGroupBatchRows);
            }
            return Status::OK();
          });
      std::string record;
      for (;;) {
        if (abort.failed()) {
          return;
        }
        const Result<bool> more = (*stream)->Next(&record);
        if (!more.ok()) {
          abort.Fail(more.status());
          return;
        }
        if (!*more) {
          break;
        }
        const Result<PreEtiRow> row = DecodePreEtiRow(record);
        if (!row.ok()) {
          abort.Fail(row.status());
          return;
        }
        const Status consumed = acc.Consume(*row);
        if (!consumed.ok()) {
          abort.Fail(consumed);
          return;
        }
      }
      const Status flushed = acc.Flush();
      if (!flushed.ok()) {
        abort.Fail(flushed);
        return;
      }
      if (!batch.empty() && !out_queues[p]->Push(std::move(batch))) {
        return;
      }
      rows_out[p] = acc.eti_rows();
      stops_out[p] = acc.stop_qgrams();
    });
  }

  // The ordered writer runs on the calling thread — the only thread that
  // touches the database during the build, which keeps page allocation
  // (and thus the persisted file) deterministic.
  {
    std::vector<MergeCursor> cursors;
    cursors.reserve(kPartitions);
    for (size_t p = 0; p < kPartitions; ++p) {
      cursors.emplace_back(out_queues[p].get());
    }
    const auto greater = [&](size_t a, size_t b) {
      // Group keys are unique across partitions; no tie-break needed.
      return cursors[a].current().key > cursors[b].current().key;
    };
    std::priority_queue<size_t, std::vector<size_t>, decltype(greater)>
        heap(greater);
    for (size_t p = 0; p < kPartitions; ++p) {
      if (cursors[p].Advance()) {
        heap.push(p);
      }
    }
    while (!heap.empty()) {
      const size_t p = heap.top();
      heap.pop();
      EtiRowOut& out = cursors[p].current();
      const Status written =
          WriteEncodedEtiRow(eti_table, eti_index, out.key, out.row);
      if (!written.ok()) {
        abort.Fail(written);
        break;
      }
      if (cursors[p].Advance()) {
        heap.push(p);
      }
    }
  }

  for (auto& t : groupers) {
    t.join();
  }
  if (abort.failed()) {
    return abort.first_error();
  }
  for (size_t p = 0; p < kPartitions; ++p) {
    stats->eti_rows += rows_out[p];
    stats->stop_qgrams += stops_out[p];
  }
  stats->merge_seconds = phase_timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace

Result<BuiltEti> EtiBuilder::Build(Database* db, Table* ref,
                                   const Options& options) {
  const EtiParams& params = options.params;
  if (params.q < 1) {
    return Status::InvalidArgument("q must be >= 1");
  }
  if (params.signature_size < 0) {
    return Status::InvalidArgument("signature size must be >= 0");
  }
  if (params.signature_size == 0 && !params.index_tokens &&
      !params.full_qgram_index) {
    return Status::InvalidArgument(
        "Q_0 indexes nothing; enable token indexing or use H >= 1");
  }
  if (options.build_threads < 0) {
    return Status::InvalidArgument("build_threads must be >= 0");
  }

  Timer total_timer;
  Timer phase_timer;
  EtiBuildStats stats;

  size_t workers = static_cast<size_t>(options.build_threads);
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min<size_t>(workers, 256);
  stats.build_threads = static_cast<uint32_t>(workers);

  FM_ASSIGN_OR_RETURN(stats.temp_dir,
                      ResolveTempDir(db, options.temp_dir));

  const std::string eti_name =
      options.output_name.empty()
          ? ref->name() + "_eti_" + params.StrategyName()
          : options.output_name;
  FM_ASSIGN_OR_RETURN(Table * eti_table,
                      db->CreateTable(eti_name, Eti::RowSchema()));
  FM_ASSIGN_OR_RETURN(BPlusTree * eti_index,
                      db->CreateIndex(eti_name + "_idx"));
  FM_RETURN_IF_ERROR(SaveEtiParams(db, eti_name, params));

  IdfWeights::Builder weights_builder(
      MakeFrequencyCache(options.cache_kind, options.bounded_buckets));

  if (workers > 1) {
    FM_RETURN_IF_ERROR(ParallelBuild(ref, eti_table, eti_index, options,
                                     stats.temp_dir, workers,
                                     &weights_builder, &stats));
    stats.total_seconds = total_timer.ElapsedSeconds();
    MirrorBuildStats(stats);
    return BuiltEti{Eti(eti_table, eti_index, params),
                    weights_builder.Finish(), stats};
  }

  const Tokenizer tokenizer(params.delimiters);
  const MinHasher hasher(params.q, params.signature_size,
                         params.minhash_seed);

  ExternalSorter::Options sort_options;
  sort_options.memory_budget_bytes = options.sort_memory_bytes;
  sort_options.temp_dir = stats.temp_dir;
  ExternalSorter sorter(sort_options);

  // Phase 1: scan R, feed the weight builder, emit pre-ETI rows.
  {
    Table::Scanner scanner = ref->Scan();
    Tid tid;
    Row row;
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
      if (!more) break;
      ++stats.reference_tuples;
      const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
      weights_builder.AddTuple(tokens);
      for (uint32_t col = 0; col < tokens.size(); ++col) {
        for (const auto& token : tokens[col]) {
          for (const TokenCoordinate& tc : MakeTokenCoordinates(
                   hasher, params, token, /*token_weight=*/0)) {
            FM_RETURN_IF_ERROR(sorter.Add(
                EncodePreEtiRow(tc.gram, tc.coordinate, col, tid)));
            ++stats.pre_eti_rows;
          }
        }
      }
    }
  }
  stats.scan_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();
  if (options.on_scan_complete) {
    options.on_scan_complete();
  }

  // Phase 2: sort (the ETI-query's ORDER BY), group, write ETI rows.
  stats.spilled_runs = sorter.spilled_runs();
  FM_ASSIGN_OR_RETURN(std::unique_ptr<SortedStream> stream, sorter.Finish());
  GroupAccumulator writer(
      params.stop_qgram_threshold,
      [&](const std::string& gram, uint32_t coordinate, uint32_t column,
          EtiEntry entry) {
        return WriteEtiRow(eti_table, eti_index, gram, coordinate, column,
                           entry);
      });
  std::string record;
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, stream->Next(&record));
    if (!more) break;
    FM_ASSIGN_OR_RETURN(const PreEtiRow row, DecodePreEtiRow(record));
    FM_RETURN_IF_ERROR(writer.Consume(row));
  }
  FM_RETURN_IF_ERROR(writer.Flush());
  stats.eti_rows = writer.eti_rows();
  stats.stop_qgrams = writer.stop_qgrams();
  stats.merge_seconds = phase_timer.ElapsedSeconds();
  stats.total_seconds = total_timer.ElapsedSeconds();
  MirrorBuildStats(stats);

  return BuiltEti{Eti(eti_table, eti_index, params),
                  weights_builder.Finish(), stats};
}

Result<BuiltEti> EtiBuilder::Attach(Database* db, Table* ref,
                                    const std::string& strategy_name,
                                    FrequencyCacheKind cache_kind,
                                    size_t bounded_buckets) {
  const std::string eti_name = ref->name() + "_eti_" + strategy_name;
  FM_ASSIGN_OR_RETURN(EtiParams params, LoadEtiParams(db, eti_name));
  FM_ASSIGN_OR_RETURN(Table * eti_table, db->GetTable(eti_name));
  FM_ASSIGN_OR_RETURN(BPlusTree * eti_index,
                      db->GetIndex(eti_name + "_idx"));

  Timer timer;
  EtiBuildStats stats;
  stats.eti_rows = eti_table->row_count();

  // Rebuild the main-memory token-frequency cache (Section 4.4.1) with
  // one scan of the reference relation; everything index-shaped is reused
  // as-is.
  const Tokenizer tokenizer(params.delimiters);
  IdfWeights::Builder weights_builder(
      MakeFrequencyCache(cache_kind, bounded_buckets));
  Table::Scanner scanner = ref->Scan();
  Tid tid;
  Row row;
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
    if (!more) break;
    ++stats.reference_tuples;
    weights_builder.AddTuple(tokenizer.TokenizeTuple(row));
  }
  stats.scan_seconds = timer.ElapsedSeconds();
  stats.total_seconds = stats.scan_seconds;

  return BuiltEti{Eti(eti_table, eti_index, std::move(params)),
                  weights_builder.Finish(), stats};
}

}  // namespace fuzzymatch

#include "eti/eti_builder.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/timer.h"
#include "eti/signature.h"
#include "eti/tid_list.h"
#include "storage/external_sort.h"
#include "storage/key_codec.h"

namespace fuzzymatch {

namespace {

/// One decoded pre-ETI row.
struct PreEtiRow {
  std::string gram;
  uint32_t coordinate;
  uint32_t column;
  Tid tid;
};

std::string EncodePreEtiRow(std::string_view gram, uint32_t coordinate,
                            uint32_t column, Tid tid) {
  KeyEncoder enc;
  enc.AppendString(gram).AppendU32(coordinate).AppendU32(column).AppendU32(
      tid);
  return enc.Take();
}

Result<PreEtiRow> DecodePreEtiRow(std::string_view record) {
  KeyDecoder dec(record);
  PreEtiRow row;
  FM_ASSIGN_OR_RETURN(row.gram, dec.ReadString());
  FM_ASSIGN_OR_RETURN(row.coordinate, dec.ReadU32());
  FM_ASSIGN_OR_RETURN(row.column, dec.ReadU32());
  FM_ASSIGN_OR_RETURN(row.tid, dec.ReadU32());
  if (!dec.Done()) {
    return Status::Corruption("trailing bytes in pre-ETI row");
  }
  return row;
}

/// Accumulates one [QGram, Coordinate, Column] group and flushes it as an
/// ETI row. Tid-lists that reach the stop threshold are dropped and the
/// row is marked as a stop q-gram (NULL tid-list), still recording the
/// true frequency.
class GroupWriter {
 public:
  GroupWriter(Table* eti_table, BPlusTree* eti_index, uint32_t stop_threshold)
      : eti_table_(eti_table),
        eti_index_(eti_index),
        stop_threshold_(stop_threshold) {}

  Status Consume(const PreEtiRow& row) {
    if (!open_ || row.gram != gram_ || row.coordinate != coordinate_ ||
        row.column != column_) {
      FM_RETURN_IF_ERROR(Flush());
      open_ = true;
      gram_ = row.gram;
      coordinate_ = row.coordinate;
      column_ = row.column;
      frequency_ = 0;
      tids_.clear();
      last_tid_ = 0;
    }
    // Sorted input: duplicates (same token twice in one column of one
    // tuple) are adjacent.
    if (frequency_ > 0 && row.tid == last_tid_) {
      return Status::OK();
    }
    ++frequency_;
    last_tid_ = row.tid;
    if (frequency_ <= stop_threshold_ && frequency_ == tids_.size() + 1) {
      tids_.push_back(row.tid);
    }
    if (frequency_ > stop_threshold_) {
      tids_.clear();  // stop q-gram: keep counting, drop the list
    }
    return Status::OK();
  }

  Status Flush() {
    if (!open_) {
      return Status::OK();
    }
    EtiEntry entry;
    entry.frequency = frequency_;
    entry.is_stop = frequency_ > stop_threshold_;
    if (!entry.is_stop) {
      entry.tids = std::move(tids_);
    }
    stop_qgrams_ += entry.is_stop ? 1 : 0;
    ++eti_rows_;
    const Row row = Eti::EncodeRow(gram_, coordinate_, column_, entry);
    FM_ASSIGN_OR_RETURN(const Table::InsertInfo info,
                        eti_table_->InsertWithLocation(row));
    FM_RETURN_IF_ERROR(eti_index_->Insert(
        Eti::IndexKey(gram_, coordinate_, column_), info.rid.Encode()));
    tids_.clear();
    open_ = false;
    return Status::OK();
  }

  uint64_t eti_rows() const { return eti_rows_; }
  uint64_t stop_qgrams() const { return stop_qgrams_; }

 private:
  Table* eti_table_;
  BPlusTree* eti_index_;
  uint32_t stop_threshold_;

  bool open_ = false;
  std::string gram_;
  uint32_t coordinate_ = 0;
  uint32_t column_ = 0;
  uint32_t frequency_ = 0;
  Tid last_tid_ = 0;
  std::vector<Tid> tids_;
  uint64_t eti_rows_ = 0;
  uint64_t stop_qgrams_ = 0;
};

}  // namespace

Result<BuiltEti> EtiBuilder::Build(Database* db, Table* ref,
                                   const Options& options) {
  const EtiParams& params = options.params;
  if (params.q < 1) {
    return Status::InvalidArgument("q must be >= 1");
  }
  if (params.signature_size < 0) {
    return Status::InvalidArgument("signature size must be >= 0");
  }
  if (params.signature_size == 0 && !params.index_tokens &&
      !params.full_qgram_index) {
    return Status::InvalidArgument(
        "Q_0 indexes nothing; enable token indexing or use H >= 1");
  }

  Timer total_timer;
  Timer phase_timer;
  EtiBuildStats stats;

  const std::string eti_name =
      ref->name() + "_eti_" + params.StrategyName();
  FM_ASSIGN_OR_RETURN(Table * eti_table,
                      db->CreateTable(eti_name, Eti::RowSchema()));
  FM_ASSIGN_OR_RETURN(BPlusTree * eti_index,
                      db->CreateIndex(eti_name + "_idx"));
  FM_RETURN_IF_ERROR(SaveEtiParams(db, eti_name, params));

  const Tokenizer tokenizer(params.delimiters);
  const MinHasher hasher(params.q, params.signature_size,
                         params.minhash_seed);
  IdfWeights::Builder weights_builder(
      MakeFrequencyCache(options.cache_kind, options.bounded_buckets));

  ExternalSorter::Options sort_options;
  sort_options.memory_budget_bytes = options.sort_memory_bytes;
  sort_options.temp_dir = options.temp_dir;
  ExternalSorter sorter(sort_options);

  // Phase 1: scan R, feed the weight builder, emit pre-ETI rows.
  {
    Table::Scanner scanner = ref->Scan();
    Tid tid;
    Row row;
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
      if (!more) break;
      ++stats.reference_tuples;
      const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
      weights_builder.AddTuple(tokens);
      for (uint32_t col = 0; col < tokens.size(); ++col) {
        for (const auto& token : tokens[col]) {
          for (const TokenCoordinate& tc : MakeTokenCoordinates(
                   hasher, params, token, /*token_weight=*/0)) {
            FM_RETURN_IF_ERROR(sorter.Add(
                EncodePreEtiRow(tc.gram, tc.coordinate, col, tid)));
            ++stats.pre_eti_rows;
          }
        }
      }
    }
  }
  stats.scan_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // Phase 2: sort (the ETI-query's ORDER BY), group, write ETI rows.
  stats.spilled_runs = sorter.spilled_runs();
  FM_ASSIGN_OR_RETURN(std::unique_ptr<SortedStream> stream, sorter.Finish());
  GroupWriter writer(eti_table, eti_index, params.stop_qgram_threshold);
  std::string record;
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, stream->Next(&record));
    if (!more) break;
    FM_ASSIGN_OR_RETURN(const PreEtiRow row, DecodePreEtiRow(record));
    FM_RETURN_IF_ERROR(writer.Consume(row));
  }
  FM_RETURN_IF_ERROR(writer.Flush());
  stats.eti_rows = writer.eti_rows();
  stats.stop_qgrams = writer.stop_qgrams();
  stats.merge_seconds = phase_timer.ElapsedSeconds();
  stats.total_seconds = total_timer.ElapsedSeconds();

  return BuiltEti{Eti(eti_table, eti_index, params),
                  weights_builder.Finish(), stats};
}

Result<BuiltEti> EtiBuilder::Attach(Database* db, Table* ref,
                                    const std::string& strategy_name,
                                    FrequencyCacheKind cache_kind,
                                    size_t bounded_buckets) {
  const std::string eti_name = ref->name() + "_eti_" + strategy_name;
  FM_ASSIGN_OR_RETURN(EtiParams params, LoadEtiParams(db, eti_name));
  FM_ASSIGN_OR_RETURN(Table * eti_table, db->GetTable(eti_name));
  FM_ASSIGN_OR_RETURN(BPlusTree * eti_index,
                      db->GetIndex(eti_name + "_idx"));

  Timer timer;
  EtiBuildStats stats;
  stats.eti_rows = eti_table->row_count();

  // Rebuild the main-memory token-frequency cache (Section 4.4.1) with
  // one scan of the reference relation; everything index-shaped is reused
  // as-is.
  const Tokenizer tokenizer(params.delimiters);
  IdfWeights::Builder weights_builder(
      MakeFrequencyCache(cache_kind, bounded_buckets));
  Table::Scanner scanner = ref->Scan();
  Tid tid;
  Row row;
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
    if (!more) break;
    ++stats.reference_tuples;
    weights_builder.AddTuple(tokenizer.TokenizeTuple(row));
  }
  stats.scan_seconds = timer.ElapsedSeconds();
  stats.total_seconds = stats.scan_seconds;

  return BuiltEti{Eti(eti_table, eti_index, std::move(params)),
                  weights_builder.Finish(), stats};
}

}  // namespace fuzzymatch

// Tid-list codec: the variable-length Tid-list attribute of ETI rows.
//
// Lists are stored sorted ascending and delta-compressed with varints, so
// a 10,000-tid list of a near-stop q-gram stays compact.

#ifndef FUZZYMATCH_ETI_TID_LIST_H_
#define FUZZYMATCH_ETI_TID_LIST_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/simd_varint.h"
#include "storage/table.h"

namespace fuzzymatch {

/// Encodes a sorted, duplicate-free tid list.
std::string EncodeTidList(const std::vector<Tid>& tids);

/// Decodes a tid list; fails on corrupt or unsorted data.
Result<std::vector<Tid>> DecodeTidList(std::string_view blob);

/// Decodes into a caller-owned buffer (cleared first). The buffer's
/// capacity is reused across calls, so steady-state decoding allocates
/// nothing — the shape the query hot path needs. Uses the best SIMD
/// kernel this CPU supports (see common/simd_varint.h).
Status DecodeTidListInto(std::string_view blob, std::vector<Tid>* out);

/// Same, decoding with an explicit kernel — the ablation hook the
/// scalar|simd lookup-path flag plugs into, and what the codec tests use
/// to run every kernel on one machine.
Status DecodeTidListInto(SimdLevel level, std::string_view blob,
                         std::vector<Tid>* out);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_ETI_TID_LIST_H_

#include "eti/tid_list.h"

#include "common/varint.h"

namespace fuzzymatch {

std::string EncodeTidList(const std::vector<Tid>& tids) {
  std::string out;
  PutVarint64(&out, tids.size());
  Tid prev = 0;
  for (size_t i = 0; i < tids.size(); ++i) {
    const Tid t = tids[i];
    PutVarint64(&out, i == 0 ? t : t - prev);
    prev = t;
  }
  return out;
}

Result<std::vector<Tid>> DecodeTidList(std::string_view blob) {
  std::vector<Tid> tids;
  FM_RETURN_IF_ERROR(DecodeTidListInto(blob, &tids));
  return tids;
}

Status DecodeTidListInto(std::string_view blob, std::vector<Tid>* out) {
  out->clear();
  FM_ASSIGN_OR_RETURN(const uint64_t count, GetVarint64(&blob));
  out->reserve(count);
  Tid prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    FM_ASSIGN_OR_RETURN(const uint64_t delta, GetVarint64(&blob));
    const Tid t = (i == 0) ? static_cast<Tid>(delta)
                           : static_cast<Tid>(prev + delta);
    if (i > 0 && delta == 0) {
      return Status::Corruption("duplicate tid in tid-list");
    }
    out->push_back(t);
    prev = t;
  }
  if (!blob.empty()) {
    return Status::Corruption("trailing bytes after tid-list");
  }
  return Status::OK();
}

}  // namespace fuzzymatch

#include "eti/tid_list.h"

#include "common/varint.h"

namespace fuzzymatch {

std::string EncodeTidList(const std::vector<Tid>& tids) {
  std::string out;
  PutVarint64(&out, tids.size());
  Tid prev = 0;
  for (size_t i = 0; i < tids.size(); ++i) {
    const Tid t = tids[i];
    PutVarint64(&out, i == 0 ? t : t - prev);
    prev = t;
  }
  return out;
}

Result<std::vector<Tid>> DecodeTidList(std::string_view blob) {
  std::vector<Tid> tids;
  FM_RETURN_IF_ERROR(DecodeTidListInto(blob, &tids));
  return tids;
}

Status DecodeTidListInto(std::string_view blob, std::vector<Tid>* out) {
  return DecodeTidListInto(DetectSimdLevel(), blob, out);
}

Status DecodeTidListInto(SimdLevel level, std::string_view blob,
                         std::vector<Tid>* out) {
  out->clear();
  FM_ASSIGN_OR_RETURN(const uint64_t count, GetVarint64(&blob));
  // Every tid takes at least one byte, so a count beyond the remaining
  // payload is corrupt — checked before resize so a torn count header
  // can't drive a multi-gigabyte allocation.
  if (count > blob.size()) {
    return Status::Corruption("tid-list count exceeds payload");
  }
  if (count == 0) {
    if (!blob.empty()) {
      return Status::Corruption("trailing bytes after tid-list");
    }
    return Status::OK();
  }
  out->resize(count);
  FM_ASSIGN_OR_RETURN(const uint64_t first, GetVarint64(&blob));
  if (first > UINT32_MAX) {
    return Status::Corruption("tid overflows uint32");
  }
  (*out)[0] = static_cast<Tid>(first);
  FM_RETURN_IF_ERROR(DecodeDeltaVarints(level, &blob, count - 1,
                                        (*out)[0], out->data() + 1));
  if (!blob.empty()) {
    return Status::Corruption("trailing bytes after tid-list");
  }
  return Status::OK();
}

}  // namespace fuzzymatch

// The ablation axis of the ETI lookup hot path (DESIGN.md 5i).
//
//   scalar  — hash-accelerator probes with scalar varint posting decode;
//             the pre-optimization baseline, and the only path compiled
//             when -DFM_SIMD=OFF.
//   simd    — the same probe route with SIMD posting decode (best kernel
//             the CPU supports) and software-prefetched batched probes
//             from the matcher. The default.
//   learned — the per-segment learned-offset structure answers probes
//             (eti/learned_offsets.h), with B-tree fallback on miss;
//             posting decode is SIMD.
//
// Every variant returns byte-identical match output at any shard count —
// the paths differ only in how fast they find the same postings.

#ifndef FUZZYMATCH_ETI_LOOKUP_PATH_H_
#define FUZZYMATCH_ETI_LOOKUP_PATH_H_

#include <string_view>

#include "common/result.h"

namespace fuzzymatch {

enum class LookupPath : uint8_t {
  kScalar = 0,
  kSimd = 1,
  kLearned = 2,
};

/// "scalar" / "simd" / "learned".
const char* LookupPathName(LookupPath path);

/// Parses a variant name; InvalidArgument on anything else.
Result<LookupPath> ParseLookupPath(std::string_view name);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_ETI_LOOKUP_PATH_H_

// The Error Tolerant Index relation (Section 4.2 of the paper).
//
// ETI is a standard relation [QGram, Coordinate, Column, Frequency,
// Tid-list] stored in the database engine and clustered-indexed (B+-tree)
// on [QGram, Coordinate, Column]. Row e says: the reference tuples in
// e[Tid-list] each contain, in column e[Column], a token whose
// e[Coordinate]-th min-hash coordinate is e[QGram].
//
// Coordinate conventions: q-gram coordinates are 1..H; coordinate 0 is the
// token itself when token indexing (Q+T, Section 5.1) is enabled. Q-grams
// whose frequency reaches the stop threshold are stored with a NULL
// tid-list ("stop q-grams").

#ifndef FUZZYMATCH_ETI_ETI_H_
#define FUZZYMATCH_ETI_ETI_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "eti/eti_accel.h"
#include "eti/learned_offsets.h"
#include "eti/lookup_path.h"
#include "storage/btree.h"
#include "storage/database.h"
#include "storage/table.h"
#include "text/minhash.h"
#include "text/tokenizer.h"

namespace fuzzymatch {

/// Index-construction parameters; query processing must use the same ones.
struct EtiParams {
  /// Q-gram size (paper's experiments: q = 4).
  int q = 4;
  /// Min-hash signature size H (0 allowed only with index_tokens).
  int signature_size = 3;
  /// Q+T: additionally index whole tokens as coordinate 0 (Section 5.1).
  bool index_tokens = false;
  /// Baseline mode (Section 2's comparison point, after Gravano et al.):
  /// index EVERY q-gram of every token instead of an H-sized min-hash
  /// sample. All q-grams share coordinate 1; signature_size is ignored.
  /// Much larger index, no sampling error — the trade-off the ETI's
  /// probabilistic subset is designed to win.
  bool full_qgram_index = false;
  /// Stop q-gram threshold (paper: 10000): rows whose tid-list would reach
  /// this size store NULL instead.
  uint32_t stop_qgram_threshold = 10000;
  /// Seed of the min-hash function family.
  uint64_t minhash_seed = 0x5eedf00dULL;
  /// Tokenizer delimiter set.
  std::string delimiters = " \t\r\n";

  /// "Q_H" / "Q+T_H", the paper's strategy naming.
  std::string StrategyName() const;
};

/// One decoded ETI row.
struct EtiEntry {
  uint32_t frequency = 0;
  /// True for stop q-grams: frequency is real but the tid-list is NULL.
  bool is_stop = false;
  std::vector<Tid> tids;
};

/// Caller-owned scratch for the zero-allocation lookup path. One per
/// thread (or per query); its buffer capacity is reused across probes.
struct EtiScratch {
  std::vector<Tid> tids;
  /// Encoded-key staging for the learned and B-tree routes.
  std::string key;
};

/// The swappable quadruple behind an Eti: the persisted rows/index pair
/// plus the in-memory read accelerators built over them. An online
/// rebuild assembles a fresh EtiStorage off to the side and installs it
/// with one atomic pointer store; readers that loaded the old one keep
/// using it (retired storages stay alive until the Eti dies).
struct EtiStorage {
  Table* rows = nullptr;
  BPlusTree* index = nullptr;
  /// Shared so copies of the handle keep accelerating the same tables.
  std::shared_ptr<EtiAccel> accel;
  std::shared_ptr<LearnedOffsets> learned;
};

/// Read handle over a built ETI.
class Eti {
 public:
  /// Attaches to a persisted ETI (rows table + key index); `params` must
  /// be the build-time parameters (the core facade persists them).
  Eti(Table* rows, BPlusTree* index, EtiParams params);

  /// Movable (handed out by value in BuiltEti). Moving while other
  /// threads read is outside the contract — moves happen at assembly.
  Eti(Eti&& other) noexcept;
  Eti& operator=(Eti&& other) noexcept;
  /// A copy is a handle over a snapshot of the source's current storage
  /// (rows/index pointers shared, accelerator structures refcounted); it
  /// does not follow the source's later swaps.
  Eti(const Eti& other);
  Eti& operator=(const Eti& other);

  /// Fetches the ETI row for (gram, coordinate, column); nullopt when the
  /// combination is not indexed. Convenience wrapper over LookupInto that
  /// copies the tid-list out; the query hot path uses LookupInto.
  Result<std::optional<EtiEntry>> Lookup(std::string_view gram,
                                         uint32_t coordinate,
                                         uint32_t column) const;

  /// The hot-path lookup: consults the acceleration segment first (zero
  /// latching, zero allocation) and falls back to the B-tree on a spill.
  /// The returned view's tid pointer aims into `scratch` and stays valid
  /// until the next LookupInto with the same scratch.
  Result<EtiLookupView> LookupInto(std::string_view gram,
                                   uint32_t coordinate, uint32_t column,
                                   EtiScratch* scratch) const;

  /// LookupInto with the accelerator probe hash precomputed — the batched
  /// probe loop computes hashes for a whole tuple, prefetches slot lines
  /// (PrefetchProbe), then probes in order. `hash` must be
  /// ProbeHash(gram, coordinate, column); it is ignored on routes that do
  /// not probe the hash accelerator.
  Result<EtiLookupView> LookupHashed(uint64_t hash, std::string_view gram,
                                     uint32_t coordinate, uint32_t column,
                                     EtiScratch* scratch) const;

  /// The accelerator probe hash for a key (see LookupHashed).
  static uint64_t ProbeHash(std::string_view gram, uint32_t coordinate,
                            uint32_t column) {
    return EtiAccel::KeyHash(gram, coordinate, column);
  }

  /// Prefetches the accelerator slot line a future LookupHashed will
  /// touch. No-op when the hash accelerator is not on the probe route.
  void PrefetchProbe(uint64_t hash) const {
    const EtiStorage& s = storage();
    if (s.accel != nullptr && lookup_path_ != LookupPath::kLearned) {
      s.accel->PrefetchSlot(hash);
    }
  }

  /// True when probes go through the hash accelerator (so precomputing
  /// hashes and prefetching slot lines pays off).
  bool accel_probes_active() const {
    return storage().accel != nullptr &&
           lookup_path_ != LookupPath::kLearned;
  }

  /// Selects the lookup-path variant (writer-phase setup, before
  /// concurrent readers start). kScalar pins posting decode to the
  /// scalar kernel; kSimd (the default) uses the best kernel the CPU
  /// supports; kLearned additionally builds the learned-offset structure
  /// over the persisted rows and routes probes through it.
  Status SetLookupPath(LookupPath path);

  LookupPath lookup_path() const { return lookup_path_; }

  /// The learned-offset structure, or nullptr (telemetry and tests).
  const LearnedOffsets* learned() const { return storage().learned.get(); }

  /// Builds the in-memory read accelerator over the persisted rows (one
  /// sequential scan, DESIGN.md 5d). Must run before concurrent readers
  /// start; maintenance keeps it coherent via Invalidate.
  Status AttachAccelerator(const EtiAccelOptions& options);

  /// The attached accelerator, or nullptr (telemetry and tests).
  const EtiAccel* accelerator() const { return storage().accel.get(); }

  /// The live rows table / clustered index (the rebuild orchestration
  /// needs the names of what it is replacing).
  Table* rows() const { return storage().rows; }
  BPlusTree* index() const { return storage().index; }

  /// Atomically installs a replacement storage quadruple — the swap half
  /// of the online rebuild. The accelerators must already be built over
  /// `rows`/`index`; in-flight readers finish on the storage they loaded.
  /// Caller must serialize with maintenance (IndexTuple/UnindexTuple).
  void SwapStorage(Table* rows, BPlusTree* index,
                   std::shared_ptr<EtiAccel> accel,
                   std::shared_ptr<LearnedOffsets> learned);

  /// SwapStorage with `other`'s current quadruple — adopts a fully
  /// assembled shadow Eti (the rebuild's handle) wholesale.
  void SwapStorageFrom(const Eti& other);

  /// Incremental maintenance (the paper defers this "due to space
  /// constraints"): adds a freshly inserted reference tuple's signature
  /// coordinates to the index. `tid` must be larger than every tid
  /// already indexed (Table assigns tids monotonically). Rows whose
  /// frequency crosses the stop threshold become stop q-grams.
  Status IndexTuple(Tid tid, const TokenizedTuple& tokens);

  /// Removes a reference tuple's coordinates. Stop q-grams only decrement
  /// their frequency (the dropped tid-list is not reconstructed); rows
  /// whose tid-list empties are deleted. Returns NotFound when `tid` is
  /// not referenced by any of its coordinates (never indexed, or already
  /// fully unindexed); a retry after a mid-operation failure skips the
  /// coordinates already removed and finishes the rest.
  Status UnindexTuple(Tid tid, const TokenizedTuple& tokens);

  const EtiParams& params() const { return params_; }

  /// Number of ETI rows.
  uint64_t entry_count() const { return storage().rows->row_count(); }

  /// A MinHasher configured with this index's (q, H, seed).
  MinHasher MakeHasher() const {
    return MinHasher(params_.q, params_.signature_size, params_.minhash_seed);
  }

  /// A Tokenizer configured with this index's delimiters.
  Tokenizer MakeTokenizer() const { return Tokenizer(params_.delimiters); }

  /// The ETI relation's schema (exposed for tests/examples).
  static Schema RowSchema();

  /// Encodes the clustered-index key for (gram, coordinate, column).
  static std::string IndexKey(std::string_view gram, uint32_t coordinate,
                              uint32_t column);

  /// Encodes/decodes an ETI row <-> the relational Row representation.
  static Row EncodeRow(std::string_view gram, uint32_t coordinate,
                       uint32_t column, const EtiEntry& entry);
  static Result<EtiEntry> DecodeEntry(const Row& row);

 private:
  /// Applies one add/remove of `tid` to the row for (gram, coord, col).
  Status MutateEntry(std::string_view gram, uint32_t coordinate,
                     uint32_t column, Tid tid, bool add);

  /// Drops the accelerator's entry for a mutated key, if attached.
  void InvalidateAccel(std::string_view gram, uint32_t coordinate,
                       uint32_t column);

  /// One acquire-load snapshot per operation; every read in the
  /// operation then sees one coherent quadruple even if a rebuild swaps
  /// mid-flight.
  const EtiStorage& storage() const {
    return *storage_.load(std::memory_order_acquire);
  }
  /// Re-publishes the current storage with `mutate` applied (writer-side
  /// copy-and-swap, used by AttachAccelerator/SetLookupPath).
  template <typename Fn>
  void UpdateStorage(Fn&& mutate) {
    EtiStorage next = storage();
    mutate(&next);
    InstallStorage(std::move(next));
  }
  void InstallStorage(EtiStorage next);

  EtiParams params_;
  /// Current quadruple; retired ones are kept alive in storage_owner_
  /// for readers that loaded them pre-swap.
  std::atomic<const EtiStorage*> storage_{nullptr};
  std::vector<std::unique_ptr<EtiStorage>> storage_owner_;
  LookupPath lookup_path_ = LookupPath::kSimd;
  /// Varint kernel for posting decode on every route (accel, learned,
  /// B-tree); follows lookup_path_.
  SimdLevel decode_level_ = DetectSimdLevel();
};

/// Persists/reads the build parameters of an ETI as a small side relation
/// ("<eti_name>_meta"), so matchers can re-attach in later sessions.
Status SaveEtiParams(Database* db, const std::string& eti_name,
                     const EtiParams& params);
Result<EtiParams> LoadEtiParams(Database* db, const std::string& eti_name);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_ETI_ETI_H_

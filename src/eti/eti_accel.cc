#include "eti/eti_accel.h"

#include <chrono>
#include <cstring>

#include <algorithm>

#include "common/hash.h"
#include "eti/tid_list.h"
#include "obs/metrics.h"

namespace fuzzymatch {

namespace {

obs::Counter& HitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti_accel.hits");
  return *c;
}

obs::Counter& NegativesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti_accel.negative_hits");
  return *c;
}

obs::Counter& FallbacksCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti_accel.fallbacks");
  return *c;
}

obs::Counter& InvalidationsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti_accel.invalidations");
  return *c;
}

obs::Counter& MarkerOverflowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti_accel.marker_overflows");
  return *c;
}

obs::Counter& BytesDecodedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti_accel.bytes_decoded");
  return *c;
}

Result<uint32_t> DecodeU32Field(const std::optional<std::string>& field) {
  if (!field || field->size() != 4) {
    return Status::Corruption("bad u32 field in ETI row");
  }
  uint32_t v;
  std::memcpy(&v, field->data(), 4);
  return v;
}

}  // namespace

uint64_t EtiAccel::KeyHash(std::string_view gram, uint32_t coordinate,
                           uint32_t column) {
  const uint64_t seed =
      (static_cast<uint64_t>(coordinate) << 32) | column;
  return Hash64(gram, Mix64(seed));
}

bool EtiAccel::SlotMatches(const Slot& s, uint64_t hash,
                           std::string_view gram, uint32_t coordinate,
                           uint32_t column) const {
  return s.hash == hash && s.coordinate == coordinate &&
         s.column == column && s.key_len == gram.size() &&
         std::memcmp(key_arena_.data() + s.key_offset, gram.data(),
                     gram.size()) == 0;
}

size_t EtiAccel::FindSlot(uint64_t hash, std::string_view gram,
                          uint32_t coordinate, uint32_t column) const {
  const size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  while (slots_[i].state != kEmpty &&
         !SlotMatches(slots_[i], hash, gram, coordinate, column)) {
    i = (i + 1) & mask;
  }
  return i;
}

void EtiAccel::InsertAt(size_t i, uint64_t hash, std::string_view gram,
                        uint32_t coordinate, uint32_t column,
                        uint32_t frequency, SlotState state,
                        std::string_view postings) {
  Slot& s = slots_[i];
  s.hash = hash;
  s.key_offset = static_cast<uint32_t>(key_arena_.size());
  s.key_len = static_cast<uint16_t>(gram.size());
  key_arena_.append(gram);
  s.post_offset = static_cast<uint32_t>(post_arena_.size());
  s.post_len = static_cast<uint32_t>(postings.size());
  post_arena_.append(postings);
  s.frequency = frequency;
  s.coordinate = coordinate;
  s.column = column;
  s.state = state;
  ++used_slots_;
  if (state != kSpill) {
    ++resident_entries_;
  }
}

Result<std::shared_ptr<EtiAccel>> EtiAccel::Build(
    const Table* rows, const EtiAccelOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  // Pass 1: price every ETI row. A resident entry costs its slot (doubled:
  // the table is sized for <= 50% load so probes stay short chains) plus
  // its gram and postings bytes in the arenas.
  struct RowCost {
    Tid tid = 0;
    uint32_t frequency = 0;
    uint32_t key_bytes = 0;
    uint32_t post_bytes = 0;
  };
  std::vector<RowCost> priced;
  priced.reserve(rows->row_count());
  Tid max_tid = 0;
  {
    Table::Scanner scanner = rows->Scan();
    Tid tid;
    Row row;
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
      if (!more) break;
      if (row.size() != 5 || !row[0]) {
        return Status::Corruption("ETI row has wrong arity");
      }
      if (row[0]->size() > UINT16_MAX) {
        return Status::Corruption("ETI q-gram key too long to accelerate");
      }
      RowCost rc;
      rc.tid = tid;
      FM_ASSIGN_OR_RETURN(rc.frequency, DecodeU32Field(row[3]));
      rc.key_bytes = static_cast<uint32_t>(row[0]->size());
      rc.post_bytes =
          row[4] ? static_cast<uint32_t>(row[4]->size()) : 0;
      max_tid = std::max(max_tid, tid);
      priced.push_back(rc);
    }
  }

  const auto cost_of = [](const RowCost& rc) -> uint64_t {
    return 2 * sizeof(Slot) + rc.key_bytes + rc.post_bytes;
  };
  // What the segment really allocates for `count` entries: the slot array
  // is a power of two sized for <= 50% load, and the key arena reserves
  // slack for maintenance spill markers.
  const auto slot_count_for = [](size_t count) -> size_t {
    size_t nslots = 16;
    while (nslots < 2 * count + 16) {
      nslots <<= 1;
    }
    return nslots;
  };
  const auto actual_bytes = [&](size_t count, size_t key_bytes,
                                size_t post_bytes) -> uint64_t {
    return slot_count_for(count) * sizeof(Slot) + key_bytes +
           std::max<size_t>(1024, key_bytes / 8) + post_bytes;
  };

  // Admit most-frequent-first under the budget: the weight-ordered probe
  // schedule hits frequent entries most, so they buy the most B-tree
  // avoidance per resident byte.
  auto accel = std::shared_ptr<EtiAccel>(new EtiAccel());
  accel->rows_scanned_ = priced.size();
  std::sort(priced.begin(), priced.end(),
            [](const RowCost& a, const RowCost& b) {
              if (a.frequency != b.frequency) {
                return a.frequency > b.frequency;
              }
              return a.tid < b.tid;
            });
  std::vector<uint8_t> admitted(priced.empty() ? 0 : max_tid + 1, 0);
  std::vector<const RowCost*> admitted_rows;  // admission-priority order
  admitted_rows.reserve(priced.size());
  size_t admitted_key_bytes = 0;
  size_t admitted_post_bytes = 0;
  uint64_t spent = 0;
  for (const RowCost& rc : priced) {
    const uint64_t cost = cost_of(rc);
    if (spent + cost > options.memory_budget_bytes) {
      continue;  // keep filling with smaller entries further down
    }
    spent += cost;
    admitted[rc.tid] = 1;
    admitted_rows.push_back(&rc);
    admitted_key_bytes += rc.key_bytes;
    admitted_post_bytes += rc.post_bytes;
  }
  // The linear cost model underestimates the power-of-two slot array and
  // the marker slack; trim lowest-priority entries until the budget holds
  // for what will really be allocated.
  while (!admitted_rows.empty() &&
         actual_bytes(admitted_rows.size(), admitted_key_bytes,
                      admitted_post_bytes) > options.memory_budget_bytes) {
    const RowCost* rc = admitted_rows.back();
    admitted_rows.pop_back();
    admitted[rc->tid] = 0;
    admitted_key_bytes -= rc->key_bytes;
    admitted_post_bytes -= rc->post_bytes;
  }
  const size_t admitted_count = admitted_rows.size();
  accel->complete_ = admitted_count == priced.size();
  accel->rows_admitted_ = admitted_count;
  if (admitted_key_bytes > UINT32_MAX || admitted_post_bytes > UINT32_MAX) {
    return Status::InvalidArgument(
        "ETI accelerator arenas exceed 4 GiB; lower the memory budget");
  }

  // Size the table for <= 50% load at build; markers from maintenance may
  // fill it to 87.5% before the segment degrades to incomplete.
  const size_t nslots = slot_count_for(admitted_count);
  accel->slots_.assign(nslots, Slot{});
  accel->max_used_slots_ = nslots - nslots / 8;
  accel->key_arena_.reserve(admitted_key_bytes +
                            std::max<size_t>(1024, admitted_key_bytes / 8));
  accel->post_arena_.reserve(admitted_post_bytes);

  // Pass 2: load the admitted rows. Keys are normally unique (the ETI is
  // clustered on [QGram, Coordinate, Column]); a duplicate can appear if
  // a row relocation was interrupted mid-update and left a superseded
  // image behind. Neither copy is trustworthy from a heap scan alone, so
  // the key is demoted to a spill marker and served from the B-tree,
  // which always points at the authoritative image.
  if (admitted_count > 0) {
    Table::Scanner scanner = rows->Scan();
    Tid tid;
    Row row;
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
      if (!more) break;
      if (!admitted[tid]) continue;
      const std::string& gram = *row[0];
      FM_ASSIGN_OR_RETURN(const uint32_t coordinate,
                          DecodeU32Field(row[1]));
      FM_ASSIGN_OR_RETURN(const uint32_t column, DecodeU32Field(row[2]));
      FM_ASSIGN_OR_RETURN(const uint32_t frequency,
                          DecodeU32Field(row[3]));
      const uint64_t hash = EtiAccel::KeyHash(gram, coordinate, column);
      const size_t i =
          accel->FindSlot(hash, gram, coordinate, column);
      if (accel->slots_[i].state != kEmpty) {
        Slot& dup = accel->slots_[i];
        if (dup.state != kSpill) {
          --accel->resident_entries_;
          dup.state = kSpill;
        }
        continue;
      }
      accel->InsertAt(i, hash, gram, coordinate, column, frequency,
                      row[4] ? kValid : kStop,
                      row[4] ? std::string_view(*row[4])
                             : std::string_view());
    }
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("eti_accel.entries")
      ->Set(static_cast<double>(accel->resident_entries_));
  registry.GetGauge("eti_accel.bytes")
      ->Set(static_cast<double>(accel->memory_bytes()));
  registry.GetGauge("eti_accel.complete")->Set(accel->complete_ ? 1 : 0);
  registry.GetGauge("eti_accel.rows_spilled")
      ->Set(static_cast<double>(accel->rows_scanned_ -
                                accel->rows_admitted_));
  registry.GetGauge("eti_accel.build_seconds")->Set(seconds);
  return accel;
}

EtiAccel::Outcome EtiAccel::Probe(std::string_view gram, uint32_t coordinate,
                                  uint32_t column, std::vector<Tid>* scratch,
                                  EtiLookupView* out) const {
  return ProbeHashed(KeyHash(gram, coordinate, column), gram, coordinate,
                     column, scratch, out);
}

EtiAccel::Outcome EtiAccel::ProbeHashed(uint64_t hash, std::string_view gram,
                                        uint32_t coordinate, uint32_t column,
                                        std::vector<Tid>* scratch,
                                        EtiLookupView* out) const {
  *out = EtiLookupView{};
  const size_t mask = slots_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const Slot& s = slots_[i];
    if (s.state == kEmpty) {
      break;
    }
    if (!SlotMatches(s, hash, gram, coordinate, column)) {
      continue;
    }
    if (s.state == kSpill) {
      FallbacksCounter().Increment();
      return Outcome::kFallback;
    }
    out->found = true;
    out->frequency = s.frequency;
    if (s.state == kStop) {
      out->is_stop = true;
      HitsCounter().Increment();
      return Outcome::kHit;
    }
    const std::string_view blob(post_arena_.data() + s.post_offset,
                                s.post_len);
    const Status decoded = DecodeTidListInto(decode_level_, blob, scratch);
    if (!decoded.ok()) {
      // Defensive: a corrupt resident blob falls back to the B-tree,
      // which surfaces the corruption through the normal error path.
      *out = EtiLookupView{};
      FallbacksCounter().Increment();
      return Outcome::kFallback;
    }
    out->tids = scratch->data();
    out->num_tids = scratch->size();
    BytesDecodedCounter().Increment(s.post_len);
    HitsCounter().Increment();
    return Outcome::kHit;
  }
  if (complete_) {
    NegativesCounter().Increment();
    return Outcome::kNegative;
  }
  FallbacksCounter().Increment();
  return Outcome::kFallback;
}

void EtiAccel::Invalidate(std::string_view gram, uint32_t coordinate,
                          uint32_t column) {
  InvalidationsCounter().Increment();
  const uint64_t hash = KeyHash(gram, coordinate, column);
  const size_t i = FindSlot(hash, gram, coordinate, column);
  Slot& s = slots_[i];
  if (s.state != kEmpty) {
    if (s.state != kSpill) {
      --resident_entries_;
      s.state = kSpill;
      obs::MetricsRegistry::Global()
          .GetGauge("eti_accel.entries")
          ->Set(static_cast<double>(resident_entries_));
    }
    return;
  }
  if (!complete_) {
    return;  // misses already consult the B-tree
  }
  // The key is new to the segment: place a spill marker so misses stay
  // authoritative negatives. When the marker cannot fit, completeness is
  // the thing that has to give — correct, just slower.
  if (used_slots_ + 1 > max_used_slots_ ||
      key_arena_.size() + gram.size() > key_arena_.capacity() ||
      gram.size() > UINT16_MAX) {
    complete_ = false;
    MarkerOverflowsCounter().Increment();
    return;
  }
  InsertAt(i, hash, gram, coordinate, column, 0, kSpill,
           std::string_view());
}

size_t EtiAccel::memory_bytes() const {
  return slots_.capacity() * sizeof(Slot) + key_arena_.capacity() +
         post_arena_.capacity();
}

}  // namespace fuzzymatch

// EtiAccel: an immutable in-memory read-acceleration segment over the
// persisted ETI relation.
//
// The paper's query cost is dominated by ETI probes (Section 4.3): every
// coordinate of every input token is one [QGram, Coordinate, Column] key
// lookup, and the B-tree route pays index traversal, buffer-pool latching
// and row decoding per probe. The segment front-ends that route with a
// single open-addressed hash table built in one sequential scan of the
// ETI at FuzzyMatcher::Build/Open time:
//
//   - slots hold the key hash, the gram bytes (in a shared key arena),
//     the frequency, and an offset into a postings arena that stores the
//     tid-list exactly as persisted (delta-encoded varints);
//   - a probe is one hash, a short linear scan, and a varint decode into
//     a caller-owned scratch buffer — zero latching, zero allocation;
//   - a configurable byte budget caps residency. When the whole ETI does
//     not fit, the most frequent entries are admitted first (they are the
//     ones the weight-ordered OSC probe schedule touches most) and the
//     rest spill to the B-tree on miss;
//   - when every ETI row was admitted the segment is *complete*: a probe
//     miss is then an authoritative negative and skips the B-tree
//     entirely — the common case for q-grams of corrupted tokens.
//
// Maintenance coherence: IndexTuple/UnindexTuple write through to the
// B-tree and call Invalidate() for each touched key. A resident entry is
// demoted to a spill marker (next lookup re-reads the B-tree); a key the
// segment has never seen gets a fresh spill marker so completeness stays
// truthful, and if the marker cannot be placed (slot or arena headroom
// exhausted) the segment degrades to incomplete — correct, just slower.
//
// Thread safety follows the repo's shared-read latching model
// (DESIGN.md 5c/5d): any number of threads may Probe concurrently, each
// with its own scratch buffer; Build and Invalidate are writer-phase
// operations and must be exclusive with readers, exactly like the Eti
// maintenance entry points that drive them.

#ifndef FUZZYMATCH_ETI_ETI_ACCEL_H_
#define FUZZYMATCH_ETI_ETI_ACCEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/simd_varint.h"
#include "storage/table.h"

namespace fuzzymatch {

struct EtiAccelOptions {
  /// Resident-set cap: slots + key arena + postings arena. Entries that
  /// do not fit stay B-tree-only. 0 admits nothing (every probe spills),
  /// which is only useful for tests; callers normally disable the
  /// accelerator instead of passing 0.
  size_t memory_budget_bytes = 64u << 20;
};

/// One lookup answer through caller-owned storage. `tids` points into the
/// scratch buffer passed to the lookup and stays valid until that buffer
/// is reused.
struct EtiLookupView {
  bool found = false;
  bool is_stop = false;
  uint32_t frequency = 0;
  const Tid* tids = nullptr;
  size_t num_tids = 0;
};

class EtiAccel {
 public:
  enum class Outcome {
    kHit,       // resident entry; *out is filled
    kNegative,  // authoritative "not indexed" (segment is complete)
    kFallback,  // not resident or invalidated: consult the B-tree
  };

  /// Builds the segment from the persisted ETI rows relation in two
  /// sequential scans (one to price and rank entries, one to load the
  /// admitted ones).
  static Result<std::shared_ptr<EtiAccel>> Build(
      const Table* rows, const EtiAccelOptions& options);

  /// The zero-latch, zero-allocation read path. On kHit, postings are
  /// decoded into `*scratch` and `out->tids` points at its data.
  Outcome Probe(std::string_view gram, uint32_t coordinate, uint32_t column,
                std::vector<Tid>* scratch, EtiLookupView* out) const;

  /// Probe with the key hash already computed (batched probing computes
  /// hashes for a whole tuple up front, prefetches, then probes). `hash`
  /// must be KeyHash(gram, coordinate, column).
  Outcome ProbeHashed(uint64_t hash, std::string_view gram,
                      uint32_t coordinate, uint32_t column,
                      std::vector<Tid>* scratch, EtiLookupView* out) const;

  /// The probe hash for a key — what ProbeHashed/PrefetchSlot take.
  static uint64_t KeyHash(std::string_view gram, uint32_t coordinate,
                          uint32_t column);

  /// Issues a prefetch for the key's home slot line, so a ProbeHashed a
  /// few probes later finds it in cache instead of stalling on DRAM.
  void PrefetchSlot(uint64_t hash) const {
    __builtin_prefetch(&slots_[hash & (slots_.size() - 1)]);
  }

  /// Pins the varint kernel postings decode with (writer-phase setup;
  /// the default is the best kernel the CPU supports). The scalar
  /// ablation variant routes through here.
  void SetDecodeLevel(SimdLevel level) { decode_level_ = level; }

  /// Writer-phase coherence hook: demotes the key to a spill marker (or
  /// the whole segment to incomplete when no marker fits). Must not run
  /// concurrently with Probe, per the shared-read contract.
  void Invalidate(std::string_view gram, uint32_t coordinate,
                  uint32_t column);

  /// True when every ETI row is resident and no marker overflow happened:
  /// probe misses are then authoritative negatives.
  bool complete() const { return complete_; }

  /// Resident entries (including stop rows, excluding spill markers).
  size_t entry_count() const { return resident_entries_; }

  /// Bytes pinned by the segment (slots + arenas, at capacity).
  size_t memory_bytes() const;

  /// ETI rows seen / admitted by the build (spill ratio for telemetry).
  uint64_t rows_scanned() const { return rows_scanned_; }
  uint64_t rows_admitted() const { return rows_admitted_; }

 private:
  enum SlotState : uint8_t {
    kEmpty = 0,
    kValid = 1,  // frequency + resident postings
    kStop = 2,   // stop q-gram: frequency real, tid-list NULL
    kSpill = 3,  // invalidated or marker: consult the B-tree
  };

  struct Slot {
    uint64_t hash = 0;
    uint32_t key_offset = 0;
    uint32_t post_offset = 0;
    uint32_t post_len = 0;
    uint32_t frequency = 0;
    uint32_t coordinate = 0;
    uint32_t column = 0;
    uint16_t key_len = 0;
    uint8_t state = kEmpty;
  };

  EtiAccel() = default;

  /// Probe position of the key, or the first empty slot on its chain.
  size_t FindSlot(uint64_t hash, std::string_view gram, uint32_t coordinate,
                  uint32_t column) const;

  bool SlotMatches(const Slot& s, uint64_t hash, std::string_view gram,
                   uint32_t coordinate, uint32_t column) const;

  void InsertAt(size_t i, uint64_t hash, std::string_view gram,
                uint32_t coordinate, uint32_t column, uint32_t frequency,
                SlotState state, std::string_view postings);

  std::vector<Slot> slots_;   // power-of-two open-addressed table
  std::string key_arena_;     // gram bytes of resident keys + markers
  std::string post_arena_;    // delta-encoded tid-lists, as persisted
  size_t used_slots_ = 0;
  size_t max_used_slots_ = 0;  // marker headroom: keep load factor sane
  size_t resident_entries_ = 0;
  uint64_t rows_scanned_ = 0;
  uint64_t rows_admitted_ = 0;
  bool complete_ = false;
  SimdLevel decode_level_ = DetectSimdLevel();
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_ETI_ETI_ACCEL_H_

#include "eti/eti.h"

#include <cstring>

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"
#include "eti/signature.h"
#include "eti/tid_list.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/key_codec.h"

namespace fuzzymatch {

namespace {

obs::Counter& ProbesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti.probes");
  return *c;
}

obs::Counter& ProbeHitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti.probe_hits");
  return *c;
}

obs::Counter& TidListBytesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("eti.tidlist_bytes_decoded");
  return *c;
}

std::string EncodeU32Field(uint32_t v) {
  std::string out(4, '\0');
  std::memcpy(out.data(), &v, 4);
  return out;
}

Result<uint32_t> DecodeU32Field(const std::optional<std::string>& field) {
  if (!field || field->size() != 4) {
    return Status::Corruption("bad u32 field in ETI row");
  }
  uint32_t v;
  std::memcpy(&v, field->data(), 4);
  return v;
}

}  // namespace

std::string EtiParams::StrategyName() const {
  if (full_qgram_index) {
    return index_tokens ? "FULLQG+T" : "FULLQG";
  }
  return StringPrintf("%s_%d", index_tokens ? "Q+T" : "Q", signature_size);
}

Eti::Eti(Table* rows, BPlusTree* index, EtiParams params)
    : params_(std::move(params)) {
  EtiStorage s;
  s.rows = rows;
  s.index = index;
  InstallStorage(std::move(s));
}

// std::atomic is not movable, so the compiler cannot generate these; the
// owner vector moves wholesale, which keeps the published pointer valid.
Eti::Eti(Eti&& other) noexcept
    : params_(std::move(other.params_)),
      storage_owner_(std::move(other.storage_owner_)),
      lookup_path_(other.lookup_path_),
      decode_level_(other.decode_level_) {
  storage_.store(other.storage_.load(std::memory_order_acquire),
                 std::memory_order_release);
  other.storage_.store(nullptr, std::memory_order_release);
}

Eti& Eti::operator=(Eti&& other) noexcept {
  if (this != &other) {
    params_ = std::move(other.params_);
    storage_owner_ = std::move(other.storage_owner_);
    lookup_path_ = other.lookup_path_;
    decode_level_ = other.decode_level_;
    storage_.store(other.storage_.load(std::memory_order_acquire),
                   std::memory_order_release);
    other.storage_.store(nullptr, std::memory_order_release);
  }
  return *this;
}

Eti::Eti(const Eti& other)
    : params_(other.params_),
      lookup_path_(other.lookup_path_),
      decode_level_(other.decode_level_) {
  InstallStorage(EtiStorage(other.storage()));
}

Eti& Eti::operator=(const Eti& other) {
  if (this != &other) {
    params_ = other.params_;
    lookup_path_ = other.lookup_path_;
    decode_level_ = other.decode_level_;
    InstallStorage(EtiStorage(other.storage()));
  }
  return *this;
}

void Eti::InstallStorage(EtiStorage next) {
  storage_owner_.push_back(std::make_unique<EtiStorage>(std::move(next)));
  storage_.store(storage_owner_.back().get(), std::memory_order_release);
}

void Eti::SwapStorage(Table* rows, BPlusTree* index,
                      std::shared_ptr<EtiAccel> accel,
                      std::shared_ptr<LearnedOffsets> learned) {
  EtiStorage next;
  next.rows = rows;
  next.index = index;
  next.accel = std::move(accel);
  next.learned = std::move(learned);
  InstallStorage(std::move(next));
}

void Eti::SwapStorageFrom(const Eti& other) {
  InstallStorage(EtiStorage(other.storage()));
}

Schema Eti::RowSchema() {
  return Schema({"qgram", "coordinate", "column", "frequency", "tidlist"});
}

std::string Eti::IndexKey(std::string_view gram, uint32_t coordinate,
                          uint32_t column) {
  KeyEncoder enc;
  enc.AppendString(gram).AppendU32(coordinate).AppendU32(column);
  return enc.Take();
}

Row Eti::EncodeRow(std::string_view gram, uint32_t coordinate,
                   uint32_t column, const EtiEntry& entry) {
  Row row(5);
  row[0] = std::string(gram);
  row[1] = EncodeU32Field(coordinate);
  row[2] = EncodeU32Field(column);
  row[3] = EncodeU32Field(entry.frequency);
  if (entry.is_stop) {
    row[4] = std::nullopt;  // NULL tid-list, per the paper
  } else {
    row[4] = EncodeTidList(entry.tids);
  }
  return row;
}

Result<EtiEntry> Eti::DecodeEntry(const Row& row) {
  if (row.size() != 5) {
    return Status::Corruption("ETI row has wrong arity");
  }
  EtiEntry entry;
  FM_ASSIGN_OR_RETURN(entry.frequency, DecodeU32Field(row[3]));
  if (!row[4].has_value()) {
    entry.is_stop = true;
    return entry;
  }
  FM_ASSIGN_OR_RETURN(entry.tids, DecodeTidList(*row[4]));
  return entry;
}

void Eti::InvalidateAccel(std::string_view gram, uint32_t coordinate,
                          uint32_t column) {
  const EtiStorage& s = storage();
  if (s.accel == nullptr && s.learned == nullptr) {
    return;
  }
  FM_FAIL_POINT_VOID("eti.accel_invalidate");
  if (s.accel != nullptr) {
    s.accel->Invalidate(gram, coordinate, column);
  }
  if (s.learned != nullptr) {
    s.learned->Invalidate(IndexKey(gram, coordinate, column));
  }
}

Status Eti::MutateEntry(std::string_view gram, uint32_t coordinate,
                        uint32_t column, Tid tid, bool add) {
  FM_FAIL_POINT("eti.mutate_entry");
  const EtiStorage& s = storage();
  const std::string key = IndexKey(gram, coordinate, column);
  auto rid_bytes = s.index->Get(key);
  if (!rid_bytes.ok()) {
    if (!rid_bytes.status().IsNotFound()) {
      return rid_bytes.status();
    }
    if (!add) {
      return Status::OK();  // removing a coordinate that was never there
    }
    // Fresh row for a brand-new coordinate.
    EtiEntry entry;
    entry.frequency = 1;
    entry.tids = {tid};
    FM_ASSIGN_OR_RETURN(
        const Table::InsertInfo info,
        s.rows->InsertWithLocation(EncodeRow(gram, coordinate, column,
                                             entry)));
    const Status indexed = s.index->Insert(key, info.rid.Encode());
    if (!indexed.ok()) {
      // Unwind the row insert so a failed coordinate leaves no unindexed
      // orphan behind; if even the unwind fails the orphan is invisible
      // to lookups (nothing points at it) and harmless.
      const Status unwound = s.rows->Delete(info.tid);
      if (!unwound.ok()) {
        FM_LOG(Warning) << "ETI row unwind after failed index insert: "
                        << unwound;
      }
      return indexed;
    }
    InvalidateAccel(gram, coordinate, column);
    return Status::OK();
  }

  FM_ASSIGN_OR_RETURN(const Rid rid, Rid::Decode(*rid_bytes));
  FM_ASSIGN_OR_RETURN(const Row row, s.rows->GetByRid(rid));
  FM_ASSIGN_OR_RETURN(EtiEntry entry, DecodeEntry(row));

  if (add) {
    if (entry.is_stop) {
      ++entry.frequency;
    } else {
      if (!entry.tids.empty() && entry.tids.back() == tid) {
        // Already applied: a retry after a mid-tuple failure re-visits
        // coordinates that committed the first time. Skip without
        // touching the frequency so the retry converges.
        return Status::OK();
      }
      if (!entry.tids.empty() && entry.tids.back() > tid) {
        return Status::InvalidArgument(
            "IndexTuple requires monotonically growing tids");
      }
      entry.tids.push_back(tid);
      ++entry.frequency;
      if (entry.frequency > params_.stop_qgram_threshold) {
        entry.is_stop = true;
        entry.tids.clear();
      }
    }
  } else {
    if (entry.frequency == 0) {
      return Status::Corruption("ETI row with zero frequency");
    }
    --entry.frequency;
    if (!entry.is_stop) {
      const auto it =
          std::find(entry.tids.begin(), entry.tids.end(), tid);
      if (it == entry.tids.end()) {
        return Status::NotFound("tid not present in ETI row");
      }
      entry.tids.erase(it);
      // A now-empty row stays in the relation with frequency 0 (rows are
      // never physically reclaimed; lookups simply yield no tids).
    }
  }

  // Two-phase relocation: the old image stays readable until the
  // clustered index points at the new one, so a failure at any step
  // leaves the key resolvable (old or new image) and the retry converges.
  FM_ASSIGN_OR_RETURN(
      const Rid new_rid,
      s.rows->ReplaceByRid(rid, EncodeRow(gram, coordinate, column, entry)));
  if (new_rid != rid) {
    FM_RETURN_IF_ERROR(s.index->Put(key, new_rid.Encode()));
    const Status erased = s.rows->EraseRid(rid);
    if (!erased.ok()) {
      // The superseded image is unreachable (nothing points at it);
      // leaking it is harmless, so the mutation still counts as applied.
      FM_LOG(Warning) << "ETI row erase after relocation: " << erased;
    }
  }
  InvalidateAccel(gram, coordinate, column);
  return Status::OK();
}

Status Eti::IndexTuple(Tid tid, const TokenizedTuple& tokens) {
  FM_FAIL_POINT("eti.index_tuple");
  const MinHasher hasher = MakeHasher();
  for (uint32_t col = 0; col < tokens.size(); ++col) {
    // Dedupe per column: a token appearing twice contributes once.
    std::vector<std::string> distinct(tokens[col]);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    // Coordinates can also repeat across distinct tokens (two tokens with
    // the same min-hash coordinate); dedupe those as well.
    std::vector<std::pair<std::string, uint32_t>> coords;
    for (const auto& token : distinct) {
      for (const auto& tc :
           MakeTokenCoordinates(hasher, params_, token, 0.0)) {
        coords.emplace_back(tc.gram, tc.coordinate);
      }
    }
    std::sort(coords.begin(), coords.end());
    coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
    for (const auto& [gram, coordinate] : coords) {
      FM_RETURN_IF_ERROR(MutateEntry(gram, coordinate, col, tid, true));
    }
  }
  return Status::OK();
}

Status Eti::UnindexTuple(Tid tid, const TokenizedTuple& tokens) {
  const MinHasher hasher = MakeHasher();
  struct Coord {
    std::string gram;
    uint32_t coordinate;
    uint32_t column;
  };
  std::vector<Coord> coords;
  for (uint32_t col = 0; col < tokens.size(); ++col) {
    std::vector<std::string> distinct(tokens[col]);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    std::vector<std::pair<std::string, uint32_t>> col_coords;
    for (const auto& token : distinct) {
      for (const auto& tc :
           MakeTokenCoordinates(hasher, params_, token, 0.0)) {
        col_coords.emplace_back(tc.gram, tc.coordinate);
      }
    }
    std::sort(col_coords.begin(), col_coords.end());
    col_coords.erase(std::unique(col_coords.begin(), col_coords.end()),
                     col_coords.end());
    for (auto& [gram, coordinate] : col_coords) {
      coords.push_back(Coord{std::move(gram), coordinate, col});
    }
  }

  // Read-only evidence pass: decide which coordinates still reference the
  // tid before mutating anything. A stop row's NULL tid-list cannot be
  // checked, so it always counts (and gets its frequency decremented); a
  // live row without the tid is skipped, which makes a retry after a
  // mid-tuple failure converge instead of tripping on the coordinates the
  // first attempt already removed.
  bool referenced = coords.empty();  // vacuously done: nothing to remove
  const EtiStorage& s = storage();
  std::vector<bool> apply(coords.size(), false);
  for (size_t i = 0; i < coords.size(); ++i) {
    const std::string key =
        IndexKey(coords[i].gram, coords[i].coordinate, coords[i].column);
    auto rid_bytes = s.index->Get(key);
    if (!rid_bytes.ok()) {
      if (rid_bytes.status().IsNotFound()) {
        continue;
      }
      return rid_bytes.status();
    }
    FM_ASSIGN_OR_RETURN(const Rid rid, Rid::Decode(*rid_bytes));
    FM_ASSIGN_OR_RETURN(const Row row, s.rows->GetByRid(rid));
    FM_ASSIGN_OR_RETURN(const EtiEntry entry, DecodeEntry(row));
    if (entry.is_stop ||
        std::find(entry.tids.begin(), entry.tids.end(), tid) !=
            entry.tids.end()) {
      referenced = true;
      apply[i] = true;
    }
  }
  if (!referenced) {
    return Status::NotFound(
        StringPrintf("tid %u is not indexed in the ETI", tid));
  }

  for (size_t i = 0; i < coords.size(); ++i) {
    if (!apply[i]) {
      continue;
    }
    FM_FAIL_POINT("eti.unindex_tuple");
    FM_RETURN_IF_ERROR(MutateEntry(coords[i].gram, coords[i].coordinate,
                                   coords[i].column, tid, false));
  }
  return Status::OK();
}

Status SaveEtiParams(Database* db, const std::string& eti_name,
                     const EtiParams& params) {
  FM_ASSIGN_OR_RETURN(Table * meta,
                      db->CreateTable(eti_name + "_meta",
                                      Schema({"key", "value"})));
  const std::vector<std::pair<std::string, std::string>> kv = {
      {"q", StringPrintf("%d", params.q)},
      {"signature_size", StringPrintf("%d", params.signature_size)},
      {"index_tokens", params.index_tokens ? "1" : "0"},
      {"full_qgram_index", params.full_qgram_index ? "1" : "0"},
      {"stop_qgram_threshold",
       StringPrintf("%u", params.stop_qgram_threshold)},
      {"minhash_seed",
       StringPrintf("%llu",
                    static_cast<unsigned long long>(params.minhash_seed))},
      {"delimiters", params.delimiters},
  };
  for (const auto& [key, value] : kv) {
    FM_RETURN_IF_ERROR(meta->Insert(Row{key, value}).status());
  }
  return Status::OK();
}

Result<EtiParams> LoadEtiParams(Database* db, const std::string& eti_name) {
  FM_ASSIGN_OR_RETURN(Table * meta, db->GetTable(eti_name + "_meta"));
  EtiParams params;
  Table::Scanner scanner = meta->Scan();
  Tid tid;
  Row row;
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
    if (!more) break;
    if (row.size() != 2 || !row[0] || !row[1]) {
      return Status::Corruption("bad ETI meta row");
    }
    const std::string& key = *row[0];
    const std::string& value = *row[1];
    if (key == "q") {
      params.q = std::atoi(value.c_str());
    } else if (key == "signature_size") {
      params.signature_size = std::atoi(value.c_str());
    } else if (key == "index_tokens") {
      params.index_tokens = (value == "1");
    } else if (key == "full_qgram_index") {
      params.full_qgram_index = (value == "1");
    } else if (key == "stop_qgram_threshold") {
      params.stop_qgram_threshold =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "minhash_seed") {
      params.minhash_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "delimiters") {
      params.delimiters = value;
    }
  }
  return params;
}

Result<std::optional<EtiEntry>> Eti::Lookup(std::string_view gram,
                                            uint32_t coordinate,
                                            uint32_t column) const {
  EtiScratch scratch;
  FM_ASSIGN_OR_RETURN(const EtiLookupView view,
                      LookupInto(gram, coordinate, column, &scratch));
  if (!view.found) {
    return std::optional<EtiEntry>(std::nullopt);
  }
  EtiEntry entry;
  entry.frequency = view.frequency;
  entry.is_stop = view.is_stop;
  entry.tids.assign(view.tids, view.tids + view.num_tids);
  return std::optional<EtiEntry>(std::move(entry));
}

Result<EtiLookupView> Eti::LookupInto(std::string_view gram,
                                      uint32_t coordinate, uint32_t column,
                                      EtiScratch* scratch) const {
  const uint64_t hash =
      accel_probes_active() ? ProbeHash(gram, coordinate, column) : 0;
  return LookupHashed(hash, gram, coordinate, column, scratch);
}

Result<EtiLookupView> Eti::LookupHashed(uint64_t hash, std::string_view gram,
                                        uint32_t coordinate, uint32_t column,
                                        EtiScratch* scratch) const {
  ProbesCounter().Increment();
  // One coherent snapshot for the whole probe: a concurrent rebuild swap
  // cannot mix the old index with the new rows mid-lookup.
  const EtiStorage& s = storage();
  // Staged encoded key: the learned route needs it up front, the B-tree
  // route below needs it on fallback. Built at most once per probe, into
  // scratch capacity.
  bool key_staged = false;
  const auto stage_key = [&]() {
    if (!key_staged) {
      KeyEncoder enc;
      enc.Adopt(std::move(scratch->key));
      enc.AppendString(gram).AppendU32(coordinate).AppendU32(column);
      scratch->key = enc.Take();
      key_staged = true;
    }
  };

  if (lookup_path_ == LookupPath::kLearned && s.learned != nullptr) {
    stage_key();
    EtiLookupView view;
    switch (s.learned->Probe(scratch->key, decode_level_, &scratch->tids,
                             &view)) {
      case LearnedOffsets::Outcome::kHit:
        ProbeHitsCounter().Increment();
        obs::AddTraceCount("accel_hits", 1);
        return view;
      case LearnedOffsets::Outcome::kNegative:
        obs::AddTraceCount("accel_hits", 1);
        return EtiLookupView{};
      case LearnedOffsets::Outcome::kFallback:
        obs::AddTraceCount("accel_fallbacks", 1);
        break;  // consult the B-tree
    }
  } else if (s.accel) {
    EtiLookupView view;
    switch (s.accel->ProbeHashed(hash, gram, coordinate, column,
                                 &scratch->tids, &view)) {
      case EtiAccel::Outcome::kHit:
        ProbeHitsCounter().Increment();
        obs::AddTraceCount("accel_hits", 1);
        return view;
      case EtiAccel::Outcome::kNegative:
        obs::AddTraceCount("accel_hits", 1);
        return EtiLookupView{};
      case EtiAccel::Outcome::kFallback:
        obs::AddTraceCount("accel_fallbacks", 1);
        break;  // consult the B-tree
    }
  }
  stage_key();
  auto rid_bytes = s.index->Get(scratch->key);
  if (!rid_bytes.ok()) {
    if (rid_bytes.status().IsNotFound()) {
      return EtiLookupView{};
    }
    return rid_bytes.status();
  }
  FM_ASSIGN_OR_RETURN(const Rid rid, Rid::Decode(*rid_bytes));
  FM_ASSIGN_OR_RETURN(const Row row, s.rows->GetByRid(rid));
  if (row.size() != 5) {
    return Status::Corruption("ETI row has wrong arity");
  }
  EtiLookupView view;
  view.found = true;
  FM_ASSIGN_OR_RETURN(view.frequency, DecodeU32Field(row[3]));
  if (!row[4].has_value()) {
    view.is_stop = true;
    ProbeHitsCounter().Increment();
    return view;
  }
  TidListBytesCounter().Increment(row[4]->size());
  FM_RETURN_IF_ERROR(
      DecodeTidListInto(decode_level_, *row[4], &scratch->tids));
  view.tids = scratch->tids.data();
  view.num_tids = scratch->tids.size();
  ProbeHitsCounter().Increment();
  return view;
}

Status Eti::AttachAccelerator(const EtiAccelOptions& options) {
  FM_ASSIGN_OR_RETURN(std::shared_ptr<EtiAccel> accel,
                      EtiAccel::Build(storage().rows, options));
  accel->SetDecodeLevel(decode_level_);
  UpdateStorage([&](EtiStorage* s) { s->accel = std::move(accel); });
  return Status::OK();
}

Status Eti::SetLookupPath(LookupPath path) {
  lookup_path_ = path;
  decode_level_ = path == LookupPath::kScalar ? SimdLevel::kScalar
                                              : DetectSimdLevel();
  const EtiStorage& s = storage();
  if (s.accel != nullptr) {
    s.accel->SetDecodeLevel(decode_level_);
  }
  if (path == LookupPath::kLearned && s.learned == nullptr) {
    FM_ASSIGN_OR_RETURN(
        std::shared_ptr<LearnedOffsets> learned,
        LearnedOffsets::Build(s.rows, LearnedOffsetsOptions{}));
    UpdateStorage([&](EtiStorage* st) { st->learned = std::move(learned); });
  }
  obs::MetricsRegistry::Global()
      .GetGauge("lookup.variant")
      ->Set(static_cast<double>(path));
  return Status::OK();
}

}  // namespace fuzzymatch

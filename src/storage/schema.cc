#include "storage/schema.h"

#include "common/varint.h"

namespace fuzzymatch {

Schema::Schema(std::vector<std::string> column_names)
    : names_(std::move(column_names)) {}

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Schema::EncodeTo(std::string* out) const {
  PutVarint64(out, names_.size());
  for (const auto& n : names_) {
    PutVarint64(out, n.size());
    out->append(n);
  }
}

Result<Schema> Schema::Decode(std::string_view* in) {
  FM_ASSIGN_OR_RETURN(const uint64_t count, GetVarint64(in));
  std::vector<std::string> names;
  names.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FM_ASSIGN_OR_RETURN(const uint64_t len, GetVarint64(in));
    if (in->size() < len) {
      return Status::Corruption("truncated schema");
    }
    names.emplace_back(in->substr(0, len));
    in->remove_prefix(len);
  }
  return Schema(std::move(names));
}

std::string RowCodec::Encode(const Row& row) {
  std::string out;
  PutVarint64(&out, row.size());
  for (const auto& field : row) {
    if (!field.has_value()) {
      PutVarint64(&out, 0);
    } else {
      PutVarint64(&out, field->size() + 1);
      out.append(*field);
    }
  }
  return out;
}

Result<Row> RowCodec::Decode(std::string_view payload) {
  FM_ASSIGN_OR_RETURN(const uint64_t count, GetVarint64(&payload));
  Row row;
  row.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FM_ASSIGN_OR_RETURN(const uint64_t tag, GetVarint64(&payload));
    if (tag == 0) {
      row.emplace_back(std::nullopt);
      continue;
    }
    const uint64_t len = tag - 1;
    if (payload.size() < len) {
      return Status::Corruption("truncated row payload");
    }
    row.emplace_back(std::string(payload.substr(0, len)));
    payload.remove_prefix(len);
  }
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after row payload");
  }
  return row;
}

}  // namespace fuzzymatch

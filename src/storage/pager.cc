#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "fault/failpoint.h"
#include "fault/faulty_env.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {

namespace {

// Process-wide I/O telemetry; both pager modes count (in-memory "I/O" is
// a memcpy, but the access pattern is what the counters attribute).
obs::Counter& PagesReadCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pager.pages_read");
  return *c;
}

obs::Counter& PagesWrittenCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pager.pages_written");
  return *c;
}

obs::Counter& PagesAllocatedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pager.pages_allocated");
  return *c;
}

// Registers all pager counters up front so a metrics dump shows them at
// zero rather than omitting them when a workload never hits a path.
void TouchPagerCounters() {
  PagesReadCounter();
  PagesWrittenCounter();
  PagesAllocatedCounter();
}

}  // namespace

Pager::~Pager() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<Pager>> Pager::OpenFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(
        StringPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError(
        StringPrintf("lseek %s: %s", path.c_str(), std::strerror(errno)));
  }
  if (static_cast<size_t>(size) % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption(
        StringPrintf("%s: size %lld not a multiple of page size",
                     path.c_str(), static_cast<long long>(size)));
  }
  TouchPagerCounters();
#if FM_FAILPOINTS_ENABLED
  fault::FileFaults::Global().RegisterFile(path);
#endif
  auto pager = std::unique_ptr<Pager>(new Pager());
  pager->fd_ = fd;
  pager->path_ = path;
  pager->page_count_ = static_cast<uint32_t>(size / kPageSize);
  return pager;
}

std::unique_ptr<Pager> Pager::OpenInMemory() {
  TouchPagerCounters();
  return std::unique_ptr<Pager>(new Pager());
}

Result<PageId> Pager::AllocatePage() {
  FM_FAIL_POINT("pager.allocate_page");
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const PageId id = page_count_.load(std::memory_order_relaxed);
  if (id == kInvalidPageId) {
    return Status::ResourceExhausted("pager full");
  }
  if (fd_ >= 0) {
    // Extend the file with a zero page.
    std::vector<char> zeros(kPageSize, 0);
    FM_RETURN_IF_ERROR(WritePageAtUnchecked_(id, zeros.data()));
  } else {
    auto buf = std::make_unique<char[]>(kPageSize);
    std::memset(buf.get(), 0, kPageSize);
    mem_pages_.push_back(std::move(buf));
  }
  // Release-publish so a reader that observes the new count also sees the
  // extended file / the grown mem_pages_ entry it guards.
  page_count_.store(id + 1, std::memory_order_release);
  PagesAllocatedCounter().Increment();
  return id;
}

Status Pager::EnsureCapacity(PageId id) {
  if (id == kInvalidPageId) {
    return Status::ResourceExhausted("pager full");
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  uint32_t count = page_count_.load(std::memory_order_relaxed);
  while (count <= id) {
    if (fd_ >= 0) {
      std::vector<char> zeros(kPageSize, 0);
      FM_RETURN_IF_ERROR(WritePageAtUnchecked_(count, zeros.data()));
    } else {
      auto buf = std::make_unique<char[]>(kPageSize);
      std::memset(buf.get(), 0, kPageSize);
      mem_pages_.push_back(std::move(buf));
    }
    page_count_.store(++count, std::memory_order_release);
    PagesAllocatedCounter().Increment();
  }
  return Status::OK();
}

// Looks up the in-memory buffer of page `id` under the allocation mutex
// (mem_pages_ may be mid-growth on another thread); the buffer itself is
// stable once allocated, so the copy happens outside the lock.
char* Pager::MemPageUnlocked_(PageId id) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  return mem_pages_[id].get();
}

Status Pager::ReadPage(PageId id, char* buf) {
  if (id >= page_count()) {
    return Status::OutOfRange(StringPrintf("read of unallocated page %u", id));
  }
  FM_TRACE_SPAN("pager.read_page");
  PagesReadCounter().Increment();
  obs::AddTraceCount("pages_read", 1);
  if (fd_ >= 0) {
    const off_t off = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
    size_t done = 0;
    while (done < kPageSize) {
      const ssize_t n =
          ::pread(fd_, buf + done, kPageSize - done, off + done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(
            StringPrintf("pread page %u: %s", id, std::strerror(errno)));
      }
      if (n == 0) {
        return Status::Corruption(StringPrintf("short read of page %u", id));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }
  std::memcpy(buf, MemPageUnlocked_(id), kPageSize);
  return Status::OK();
}

Status Pager::WritePage(PageId id, const char* buf) {
  FM_FAIL_POINT("pager.write_page");
  if (id >= page_count()) {
    return Status::OutOfRange(
        StringPrintf("write of unallocated page %u", id));
  }
  PagesWrittenCounter().Increment();
  if (fd_ >= 0) {
    return WritePageAtUnchecked_(id, buf);
  }
  std::memcpy(MemPageUnlocked_(id), buf, kPageSize);
  return Status::OK();
}

Status Pager::Sync() {
  FM_FAIL_POINT("pager.sync");
#if FM_FAILPOINTS_ENABLED
  if (!fault::FileFaults::Global().AdmitSync()) {
    return Status::OK();  // simulated crash: the fsync never happens
  }
#endif
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    return Status::IOError(StringPrintf("fsync: %s", std::strerror(errno)));
  }
  return Status::OK();
}

// Private helper declared inline here to keep the header small.
Status Pager::WritePageAtUnchecked_(PageId id, const char* buf) {
  size_t admitted = kPageSize;
#if FM_FAILPOINTS_ENABLED
  // Simulated power loss: the kernel "accepts" the write, but some suffix
  // (or all) of it never reaches the platter.
  admitted = fault::FileFaults::Global().AdmitWrite(kPageSize);
#endif
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  size_t done = 0;
  while (done < admitted) {
    const ssize_t n = ::pwrite(fd_, buf + done, admitted - done, off + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StringPrintf("pwrite page %u: %s", id, std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace fuzzymatch

#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "fault/failpoint.h"
#include "fault/faulty_env.h"
#include "obs/metrics.h"

namespace fuzzymatch {

namespace {

obs::Counter& AppendsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.appends");
  return *c;
}

obs::Counter& CommitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.commits");
  return *c;
}

obs::Counter& FsyncsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.fsyncs");
  return *c;
}

obs::Counter& BytesWrittenCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.bytes_written");
  return *c;
}

obs::Counter& UndoRecordsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.undo_records");
  return *c;
}

obs::Counter& TruncatesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.truncates");
  return *c;
}

obs::Counter& ReplayRecordsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.replay_records");
  return *c;
}

obs::Counter& ReplayPagesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.replay_pages");
  return *c;
}

obs::Counter& ReplayUndoCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.replay_undo");
  return *c;
}

obs::Counter& TornTailBytesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("wal.torn_tail_bytes");
  return *c;
}

obs::Gauge& ReplaySecondsGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("wal.replay_seconds");
  return *g;
}

obs::Histogram& GroupSizeHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "wal.group_commit_size", obs::HistogramOptions{1.0, 2.0, 10});
  return *h;
}

void TouchWalMetrics() {
  AppendsCounter();
  CommitsCounter();
  FsyncsCounter();
  BytesWrittenCounter();
  UndoRecordsCounter();
  TruncatesCounter();
  ReplayRecordsCounter();
  ReplayPagesCounter();
  ReplayUndoCounter();
  TornTailBytesCounter();
  ReplaySecondsGauge();
  GroupSizeHistogram();
}

// CRC-32 (reflected, polynomial 0xEDB88320) over the record payload.
uint32_t Crc32(const char* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Record payload sizes: type(1) + lsn(8) + body.
constexpr size_t kImagePayloadSize = 1 + 8 + 4 + kPageSize;
constexpr size_t kCommitPayloadSize = 1 + 8 + 4;
constexpr size_t kFrameOverhead = 8;  // crc(4) + len(4)

std::string EncodeHeader(uint64_t db_id, uint64_t start_lsn) {
  std::string h;
  PutU32(&h, Wal::kMagic);
  PutU32(&h, Wal::kVersion);
  PutU64(&h, db_id);
  PutU64(&h, start_lsn);
  return h;
}

}  // namespace

Result<WalFsyncMode> ParseWalFsyncMode(std::string_view s) {
  if (s == "always") return WalFsyncMode::kAlways;
  if (s == "group") return WalFsyncMode::kGroup;
  if (s == "never") return WalFsyncMode::kNever;
  return Status::InvalidArgument(
      StringPrintf("bad wal fsync mode '%.*s' (always|group|never)",
                   static_cast<int>(s.size()), s.data()));
}

std::string_view WalFsyncModeName(WalFsyncMode mode) {
  switch (mode) {
    case WalFsyncMode::kAlways:
      return "always";
    case WalFsyncMode::kGroup:
      return "group";
    case WalFsyncMode::kNever:
      return "never";
  }
  return "unknown";
}

Wal::~Wal() {
  if (fd_ >= 0) {
    // Best-effort drain; a failure here means the process is crashing
    // anyway and recovery will see exactly the flushed prefix.
    const Status s = Sync();
    if (!s.ok()) {
      FM_LOG(Warning) << "wal drain on close failed: " << s;
    }
    ::close(fd_);
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       uint64_t db_id, uint64_t start_lsn,
                                       WalOptions options) {
  TouchWalMetrics();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(
        StringPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  auto wal = std::unique_ptr<Wal>(new Wal());
  wal->fd_ = fd;
  wal->path_ = path;
  wal->db_id_ = db_id;
  wal->options_ = options;
  FM_RETURN_IF_ERROR(wal->Truncate(start_lsn));
  return wal;
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t Wal::flushed_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_lsn_;
}

void Wal::AppendRecordLocked_(uint8_t type, uint64_t lsn, PageId page_id,
                              const char* image) {
  std::string payload;
  payload.reserve(type == kRecCommit ? kCommitPayloadSize : kImagePayloadSize);
  payload.push_back(static_cast<char>(type));
  PutU64(&payload, lsn);
  PutU32(&payload, page_id);
  if (type != kRecCommit) {
    payload.append(image, kPageSize);
  }
  PutU32(&buf_, Crc32(payload.data(), payload.size()));
  PutU32(&buf_, static_cast<uint32_t>(payload.size()));
  buf_.append(payload);
  appended_lsn_ = lsn;
  AppendsCounter().Increment();
}

Status Wal::WriteAndSync_(const std::string& data, uint64_t offset,
                          bool do_fsync) {
  FM_FAIL_POINT("wal.append");
  size_t admitted = data.size();
#if FM_FAILPOINTS_ENABLED
  // Simulated power loss. Unlike Pager::Sync, the WAL reports the loss:
  // an op whose commit record never reached the platter must not be
  // acknowledged, so the error has to unwind to the committer.
  admitted = fault::FileFaults::Global().AdmitWrite(data.size());
#endif
  size_t done = 0;
  while (done < admitted) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, admitted - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StringPrintf("wal pwrite: %s", std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  if (admitted < data.size()) {
    return Status::IOError("wal write lost (simulated crash)");
  }
  BytesWrittenCounter().Increment(data.size());
  if (!do_fsync) {
    return Status::OK();
  }
#if FM_FAILPOINTS_ENABLED
  {
    const Status fp = fault::Failpoints::Global().Hit("wal.fsync");
    const bool sync_lost =
        !fp.ok() || !fault::FileFaults::Global().AdmitSync();
    if (sync_lost) {
      if (fault::FileFaults::Global().crashed()) {
        // Power died at the fsync: the bytes this flush pwrote were
        // still in the page cache and never reached the platter. The
        // log is append-only, so cutting them off models that exactly.
        (void)::ftruncate(fd_, static_cast<off_t>(offset));
      }
      return fp.ok() ? Status::IOError("wal fsync lost (simulated crash)")
                     : fp;
    }
  }
#endif
  if (::fsync(fd_) != 0) {
    return Status::IOError(
        StringPrintf("wal fsync: %s", std::strerror(errno)));
  }
  FsyncsCounter().Increment();
  return Status::OK();
}

Status Wal::WaitDurable_(std::unique_lock<std::mutex>& lock, uint64_t lsn,
                         bool force_fsync) {
  while (flushed_lsn_ < lsn) {
    if (flushing_) {
      cv_.wait(lock);
      continue;
    }
    // Become the leader. In group mode, wait a short window with the lock
    // dropped so concurrent committers can append into the batch.
    flushing_ = true;
    if (options_.fsync_mode == WalFsyncMode::kGroup &&
        options_.group_window_us > 0) {
      lock.unlock();
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.group_window_us));
      lock.lock();
    }
    std::string batch;
    batch.swap(buf_);
    const uint64_t target = appended_lsn_;
    const uint64_t offset = file_size_;
    const size_t commits = pending_commits_;
    pending_commits_ = 0;
    lock.unlock();
    const bool do_fsync =
        force_fsync || options_.fsync_mode != WalFsyncMode::kNever;
    const Status s = WriteAndSync_(batch, offset, do_fsync);
    lock.lock();
    flushing_ = false;
    if (!s.ok()) {
      // Roll the batch back in front of anything appended meanwhile so a
      // retry rewrites the same offsets; nothing in it was acknowledged.
      buf_.insert(0, batch);
      pending_commits_ += commits;
      cv_.notify_all();
      return s;
    }
    file_size_ = offset + batch.size();
    flushed_lsn_ = target;
    if (commits > 0) {
      GroupSizeHistogram().Observe(static_cast<double>(commits));
    }
    cv_.notify_all();
  }
  return Status::OK();
}

Result<uint64_t> Wal::CommitPages(
    const std::vector<std::pair<PageId, char*>>& pages) {
  std::unique_lock<std::mutex> lock(mu_);
  for (const auto& [page_id, image] : pages) {
    const uint64_t lsn = next_lsn_++;
    Page(image).set_lsn(static_cast<uint32_t>(lsn));
    AppendRecordLocked_(kRecPageImage, lsn, page_id, image);
  }
  const uint64_t commit_lsn = next_lsn_++;
  AppendRecordLocked_(kRecCommit, commit_lsn,
                      static_cast<PageId>(pages.size()), nullptr);
  ++pending_commits_;
  FM_RETURN_IF_ERROR(WaitDurable_(lock, commit_lsn, /*force_fsync=*/false));
  CommitsCounter().Increment();
  return commit_lsn;
}

Status Wal::AppendUndo(PageId id, const char* image) {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t lsn = next_lsn_++;
  AppendRecordLocked_(kRecUndoImage, lsn, id, image);
  UndoRecordsCounter().Increment();
  // A steal must be durable in the log before the page hits the main
  // file, whatever the fsync mode — this is the no-force/steal contract.
  return WaitDurable_(lock, lsn, /*force_fsync=*/true);
}

Status Wal::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  FM_RETURN_IF_ERROR(WaitDurable_(lock, appended_lsn_, /*force_fsync=*/true));
  // In kNever mode flushes advance flushed_lsn_ without touching the
  // platter, so WaitDurable_ may have found nothing to do; the drain's
  // promise is an fsync regardless, issued here as an empty flush.
  const uint64_t offset = file_size_;
  lock.unlock();
  return WriteAndSync_(std::string(), offset, /*do_fsync=*/true);
}

Status Wal::Truncate(uint64_t start_lsn) {
  FM_FAIL_POINT("wal.truncate");
  std::unique_lock<std::mutex> lock(mu_);
  // Quiesce any in-flight flush; committed content is now covered by the
  // main file (the caller checkpointed), so losing the rest is fine.
  while (flushing_) {
    cv_.wait(lock);
  }
#if FM_FAILPOINTS_ENABLED
  if (fault::FileFaults::Global().crashed()) {
    return Status::IOError("wal truncate lost (simulated crash)");
  }
#endif
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError(
        StringPrintf("wal ftruncate: %s", std::strerror(errno)));
  }
  buf_.clear();
  pending_commits_ = 0;
  file_size_ = 0;
  next_lsn_ = start_lsn;
  appended_lsn_ = start_lsn == 0 ? 0 : start_lsn - 1;
  flushed_lsn_ = appended_lsn_;
  const std::string header = EncodeHeader(db_id_, start_lsn);
  size_t done = 0;
  while (done < header.size()) {
    const ssize_t n = ::pwrite(fd_, header.data() + done,
                               header.size() - done, done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StringPrintf("wal header pwrite: %s", std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(
        StringPrintf("wal header fsync: %s", std::strerror(errno)));
  }
  file_size_ = header.size();
  TruncatesCounter().Increment();
  return Status::OK();
}

Result<Wal::ReplayStats> Wal::Replay(const std::string& path, uint64_t db_id,
                                     uint64_t checkpoint_lsn, Pager* pager) {
  TouchWalMetrics();
  const auto t0 = std::chrono::steady_clock::now();
  ReplayStats stats;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return stats;  // no log: nothing to recover
    }
    return Status::IOError(
        StringPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  std::string content;
  {
    char chunk[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::IOError(
            StringPrintf("read %s: %s", path.c_str(), std::strerror(errno)));
      }
      if (n == 0) break;
      content.append(chunk, static_cast<size_t>(n));
    }
  }
  ::close(fd);

  if (content.size() < kHeaderSize || ReadU32(content.data()) != kMagic ||
      ReadU32(content.data() + 4) != kVersion) {
    if (!content.empty()) {
      FM_LOG(Warning) << "wal " << path << ": malformed header, ignoring";
    }
    return stats;
  }
  stats.log_present = true;
  const uint64_t log_db_id = ReadU64(content.data() + 8);
  const uint64_t log_start_lsn = ReadU64(content.data() + 16);
  if (log_db_id != db_id || log_start_lsn != checkpoint_lsn) {
    FM_LOG(Warning) << "wal " << path << ": stale log (db id or checkpoint "
                    << "lsn mismatch), ignoring";
    return stats;
  }
  stats.identity_match = true;

  // Scan: collect the last committed after-image and the newest
  // before-image per page. A CRC or framing failure is a torn tail —
  // everything from there on was never acknowledged.
  struct Image {
    uint64_t lsn = 0;
    const char* data = nullptr;
  };
  std::map<PageId, Image> committed;
  std::map<PageId, Image> undo;
  std::vector<std::pair<PageId, Image>> pending;  // current txn's images
  uint64_t last_lsn = log_start_lsn == 0 ? 0 : log_start_lsn - 1;
  size_t off = kHeaderSize;
  for (;;) {
    if (off == content.size()) break;
    if (content.size() - off < kFrameOverhead) {
      stats.torn_bytes = content.size() - off;
      break;
    }
    const uint32_t crc = ReadU32(content.data() + off);
    const uint32_t len = ReadU32(content.data() + off + 4);
    if (len < kCommitPayloadSize || len > kImagePayloadSize ||
        content.size() - off - kFrameOverhead < len) {
      stats.torn_bytes = content.size() - off;
      break;
    }
    const char* payload = content.data() + off + kFrameOverhead;
    if (Crc32(payload, len) != crc) {
      stats.torn_bytes = content.size() - off;
      break;
    }
    const uint8_t type = static_cast<uint8_t>(payload[0]);
    const uint64_t lsn = ReadU64(payload + 1);
    if (lsn <= last_lsn ||
        (type != kRecCommit && len != kImagePayloadSize) ||
        (type == kRecCommit && len != kCommitPayloadSize) ||
        (type != kRecPageImage && type != kRecUndoImage &&
         type != kRecCommit)) {
      stats.torn_bytes = content.size() - off;
      break;
    }
    last_lsn = lsn;
    ++stats.records_scanned;
    const PageId page_id = ReadU32(payload + 9);
    switch (type) {
      case kRecPageImage:
        pending.emplace_back(page_id, Image{lsn, payload + 13});
        break;
      case kRecUndoImage: {
        Image& u = undo[page_id];
        if (lsn > u.lsn) u = Image{lsn, payload + 13};
        break;
      }
      case kRecCommit:
        for (const auto& [pid, img] : pending) {
          committed[pid] = img;
        }
        pending.clear();
        ++stats.commits_applied;
        break;
    }
    off += kFrameOverhead + len;
  }
  // Images from a transaction whose commit record is missing are not
  // applied; `pending` is dropped here.

  // Redo the committed after-images (unconditionally — see file comment
  // in wal.h on why the page-header LSN is not a redo filter), then put
  // back before-images of steals no committed image supersedes.
  for (const auto& [pid, img] : committed) {
    FM_FAIL_POINT("wal.replay");
    FM_RETURN_IF_ERROR(pager->EnsureCapacity(pid));
    FM_RETURN_IF_ERROR(pager->WritePage(pid, img.data));
    ++stats.pages_applied;
  }
  for (const auto& [pid, img] : undo) {
    const auto it = committed.find(pid);
    if (it != committed.end() && it->second.lsn > img.lsn) {
      continue;  // a later committed image wins
    }
    FM_FAIL_POINT("wal.replay");
    FM_RETURN_IF_ERROR(pager->EnsureCapacity(pid));
    FM_RETURN_IF_ERROR(pager->WritePage(pid, img.data));
    ++stats.undo_applied;
  }
  stats.next_lsn = last_lsn + 1;
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ReplayRecordsCounter().Increment(stats.records_scanned);
  ReplayPagesCounter().Increment(stats.pages_applied);
  ReplayUndoCounter().Increment(stats.undo_applied);
  TornTailBytesCounter().Increment(stats.torn_bytes);
  ReplaySecondsGauge().Set(stats.seconds);
  if (stats.commits_applied > 0 || stats.torn_bytes > 0) {
    FM_LOG(Info) << "wal replay: " << stats.commits_applied << " commits, "
                 << stats.pages_applied << " pages, " << stats.undo_applied
                 << " undo images, " << stats.torn_bytes
                 << " torn tail bytes in " << stats.seconds << "s";
  }
  return stats;
}

}  // namespace fuzzymatch

// Order-preserving composite-key encoding.
//
// B+-tree keys are compared as raw bytes (memcmp order). KeyEncoder encodes
// tuples of strings and integers such that byte order equals the natural
// component-wise order — e.g. the ETI clustered key [QGram, Coordinate,
// Column] is encoded string-then-u32-then-u32.

#ifndef FUZZYMATCH_STORAGE_KEY_CODEC_H_
#define FUZZYMATCH_STORAGE_KEY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace fuzzymatch {

/// Builds an order-preserving composite key.
class KeyEncoder {
 public:
  /// Appends a string component. Encoding escapes 0x00 bytes as (0x00,0x01)
  /// and terminates with (0x00,0x00), so ("a","b") sorts before ("ab","")
  /// exactly as the component-wise comparison does.
  KeyEncoder& AppendString(std::string_view s);

  /// Appends a u32 in big-endian (memcmp order == numeric order).
  KeyEncoder& AppendU32(uint32_t v);

  /// Appends a u64 in big-endian.
  KeyEncoder& AppendU64(uint64_t v);

  /// Appends a single byte as-is.
  KeyEncoder& AppendU8(uint8_t v);

  /// Reuses `buf`'s capacity as this encoder's storage (contents
  /// cleared), so hot paths can encode into a scratch string and Take()
  /// it back without reallocating in steady state.
  void Adopt(std::string&& buf) {
    key_ = std::move(buf);
    key_.clear();
  }

  /// The encoded key so far.
  const std::string& key() const { return key_; }
  std::string Take() { return std::move(key_); }

 private:
  std::string key_;
};

/// Decodes components in the order they were appended.
class KeyDecoder {
 public:
  explicit KeyDecoder(std::string_view key) : rest_(key) {}

  Result<std::string> ReadString();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<uint8_t> ReadU8();

  /// True when all bytes have been consumed.
  bool Done() const { return rest_.empty(); }

 private:
  std::string_view rest_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_KEY_CODEC_H_

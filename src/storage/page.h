// Slotted-page layout.
//
// Every page in the storage engine is a fixed 8 KiB buffer with a small
// header, a slot directory growing down from the header, and record data
// growing up from the end of the page:
//
//   [ header | slot0 slot1 ... ->   free space   <- ... rec1 rec0 ]
//
// A Page is a non-owning view over such a buffer (the buffer itself lives
// in a buffer-pool frame).

#ifndef FUZZYMATCH_STORAGE_PAGE_H_
#define FUZZYMATCH_STORAGE_PAGE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace fuzzymatch {

/// Fixed page size of the storage engine.
inline constexpr size_t kPageSize = 8192;

/// Page identifier within a Pager; dense, starting at 0.
using PageId = uint32_t;

/// Sentinel for "no page" (e.g. end of a linked page chain).
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Slot index within a page.
using SlotId = uint16_t;

/// What a page stores; recorded in the header for sanity checking.
enum class PageType : uint16_t {
  kFree = 0,
  kHeap = 1,
  kBTreeLeaf = 2,
  kBTreeInternal = 3,
  kMeta = 4,
};

/// Mutable view over one 8 KiB page buffer with slotted-record access.
class Page {
 public:
  /// Wraps an existing buffer of kPageSize bytes; does not take ownership.
  explicit Page(char* data) : data_(data) {}

  /// Formats the buffer as an empty page of the given type.
  void Init(PageType type);

  PageType type() const;
  void set_type(PageType type);

  /// Number of slots in the directory, including tombstoned ones.
  uint16_t slot_count() const;

  /// Link to the next page in a chain (heap file page list, B+-tree leaf
  /// chain); kInvalidPageId if none.
  PageId next_page() const;
  void set_next_page(PageId id);

  /// Low 32 bits of the LSN of the last WAL record that logged this page;
  /// 0 if the page was never committed through the WAL. Observability
  /// only — recovery redoes full images unconditionally (a torn page can
  /// carry a fresh LSN over a stale tail).
  uint32_t lsn() const;
  void set_lsn(uint32_t lsn);

  /// Bytes available for one more record of any size (accounts for the
  /// slot directory entry the insert would add).
  size_t FreeSpace() const;

  /// True if a record of `len` bytes fits.
  bool Fits(size_t len) const { return FreeSpace() >= len + kSlotSize; }

  /// Appends a record; returns its slot, or nullopt if it does not fit.
  std::optional<SlotId> Insert(std::string_view record);

  /// Inserts a record so that it occupies directory position `pos`,
  /// shifting later slots up by one. Used by B+-tree nodes, which keep the
  /// slot directory sorted by key. Returns false if it does not fit.
  bool InsertAt(SlotId pos, std::string_view record);

  /// Removes the directory entry at `pos`, shifting later slots down. The
  /// record bytes become a hole reclaimed by Compact(). Unlike Delete(),
  /// this changes the slot ids of subsequent records — only for layouts
  /// (like B+-tree nodes) that do not hand out stable slot ids.
  bool RemoveAt(SlotId pos);

  /// Returns the record in `slot`, or nullopt if the slot is tombstoned or
  /// out of range.
  std::optional<std::string_view> Get(SlotId slot) const;

  /// Tombstones `slot`. The space is reclaimed by Compact(). Returns false
  /// if the slot was already empty or out of range.
  bool Delete(SlotId slot);

  /// Replaces the record in `slot` in place if the new record is not larger
  /// than the old one; returns false otherwise (caller must delete+insert).
  bool UpdateInPlace(SlotId slot, std::string_view record);

  /// Rewrites live records to squeeze out holes left by Delete(). Slot ids
  /// of live records are preserved.
  void Compact();

  /// Raw buffer access (for page-type-specific layouts like B+-tree nodes).
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Size of one slot-directory entry.
  static constexpr size_t kSlotSize = 4;
  /// Size of the page header.
  static constexpr size_t kHeaderSize = 16;
  /// Largest record a single page can hold.
  static constexpr size_t kMaxRecordSize =
      kPageSize - kHeaderSize - kSlotSize;

 private:
  uint16_t ReadU16(size_t off) const;
  void WriteU16(size_t off, uint16_t v);
  uint32_t ReadU32(size_t off) const;
  void WriteU32(size_t off, uint32_t v);

  // Header field offsets.
  static constexpr size_t kTypeOff = 0;
  static constexpr size_t kSlotCountOff = 2;
  static constexpr size_t kFreeEndOff = 4;   // record data grows down to this
  static constexpr size_t kNextPageOff = 8;
  static constexpr size_t kLsnOff = 12;  // low 32 bits of the last WAL LSN

  // Slot entry: u16 record offset (0xFFFF = tombstone), u16 record length.
  size_t SlotDirOff(SlotId slot) const {
    return kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
  }

  char* data_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_PAGE_H_

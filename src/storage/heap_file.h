// HeapFile: unordered record storage over a chain of slotted pages.
//
// Records are addressed by Rid (page id + slot). Records larger than a page
// are transparently stored in a chain of dedicated overflow pages, with a
// small stub in the slotted page — so ETI rows whose tid-lists run to tens
// of kilobytes still live in "one relation", as in the paper.

#ifndef FUZZYMATCH_STORAGE_HEAP_FILE_H_
#define FUZZYMATCH_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace fuzzymatch {

/// Record identifier: physical address of a record in a heap file.
struct Rid {
  PageId page_id = kInvalidPageId;
  SlotId slot = 0;

  bool operator==(const Rid& other) const {
    return page_id == other.page_id && slot == other.slot;
  }
  bool operator!=(const Rid& other) const { return !(*this == other); }

  /// Fixed-size (6-byte) encoding, e.g. for storing Rids as B+-tree values.
  std::string Encode() const;
  static Result<Rid> Decode(std::string_view bytes);
  static constexpr size_t kEncodedSize = 6;
};

/// Append-oriented heap of variable-length records.
class HeapFile {
 public:
  /// Creates an empty heap file (allocates its first page).
  static Result<HeapFile> Create(BufferPool* pool);

  /// Re-attaches to an existing heap file by its first page id (walks the
  /// page chain to find the append target).
  static Result<HeapFile> Open(BufferPool* pool, PageId first_page);

  /// Appends a record of any size; large records spill to overflow pages.
  Result<Rid> Insert(std::string_view record);

  /// Reads the record at `rid`.
  Result<std::string> Get(const Rid& rid) const;

  /// Tombstones the record at `rid` (frees overflow pages' contents
  /// logically; page reuse is out of scope for this engine).
  Status Delete(const Rid& rid);

  /// First page of the chain (persisted by the catalog).
  PageId first_page() const { return first_page_; }

  /// Forward scan over all live records.
  class Scanner {
   public:
    /// Advances to the next record; returns false at end-of-file. On true,
    /// fills `rid` and `record`.
    Result<bool> Next(Rid* rid, std::string* record);

   private:
    friend class HeapFile;
    Scanner(const HeapFile* file, PageId page) : file_(file), page_(page) {}
    const HeapFile* file_;
    PageId page_;
    SlotId slot_ = 0;
  };

  Scanner Scan() const { return Scanner(this, first_page_); }

 private:
  HeapFile(BufferPool* pool, PageId first, PageId last)
      : pool_(pool), first_page_(first), last_page_(last) {}

  /// Writes `record` into a fresh overflow chain; returns the head page.
  Result<PageId> WriteOverflow(std::string_view record);
  Result<std::string> ReadOverflow(PageId head, uint32_t total_len) const;

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_HEAP_FILE_H_

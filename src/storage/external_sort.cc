#include "storage/external_sort.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <queue>

#include "common/string_util.h"
#include "fault/failpoint.h"

namespace fuzzymatch {

namespace {

/// Process-wide sorter id: spill-file names built from the pid alone
/// collide when two sorters share a temp_dir in one process (each starts
/// its run numbering at 0), silently overwriting each other's runs. The
/// id makes every sorter's namespace disjoint.
std::atomic<uint64_t> g_next_sorter_id{0};

/// Reads length-prefixed records from one run file.
class RunReader {
 public:
  explicit RunReader(const std::string& path) {
    file_ = std::fopen(path.c_str(), "rb");
  }
  ~RunReader() {
    if (file_) std::fclose(file_);
  }
  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Returns false at EOF.
  Result<bool> Next(std::string* record) {
    uint32_t len;
    const size_t n = std::fread(&len, 1, sizeof(len), file_);
    if (n == 0) {
      return false;
    }
    if (n != sizeof(len)) {
      return Status::Corruption("truncated run file length");
    }
    record->resize(len);
    if (len > 0 && std::fread(record->data(), 1, len, file_) != len) {
      return Status::Corruption("truncated run file record");
    }
    return true;
  }

 private:
  std::FILE* file_ = nullptr;
};

/// In-memory sorted stream over an owned vector.
class VectorStream : public SortedStream {
 public:
  explicit VectorStream(std::vector<std::string> records)
      : records_(std::move(records)) {}

  Result<bool> Next(std::string* record) override {
    if (pos_ >= records_.size()) {
      return false;
    }
    *record = std::move(records_[pos_++]);
    return true;
  }

 private:
  std::vector<std::string> records_;
  size_t pos_ = 0;
};

/// K-way merge of sorted run files (plus an optional in-memory tail run).
class MergeStream : public SortedStream {
 public:
  MergeStream(std::vector<std::string> run_files,
              std::vector<std::string> memory_run)
      : run_files_(std::move(run_files)) {
    readers_.reserve(run_files_.size());
    for (const auto& path : run_files_) {
      readers_.push_back(std::make_unique<RunReader>(path));
    }
    memory_run_ = std::move(memory_run);
  }

  ~MergeStream() override {
    for (const auto& path : run_files_) {
      ::unlink(path.c_str());
    }
  }

  Status Init() {
    FM_FAIL_POINT("extsort.run_reopen");
    for (size_t i = 0; i < readers_.size(); ++i) {
      if (!readers_[i]->ok()) {
        return Status::IOError("failed to reopen run file");
      }
      FM_RETURN_IF_ERROR(Advance(i));
    }
    if (!memory_run_.empty()) {
      heap_.push(HeapEntry{std::move(memory_run_[0]), kMemorySource});
      memory_pos_ = 1;
    }
    return Status::OK();
  }

  Result<bool> Next(std::string* record) override {
    if (heap_.empty()) {
      return false;
    }
    HeapEntry top = std::move(const_cast<HeapEntry&>(heap_.top()));
    heap_.pop();
    *record = std::move(top.record);
    if (top.source == kMemorySource) {
      if (memory_pos_ < memory_run_.size()) {
        heap_.push(
            HeapEntry{std::move(memory_run_[memory_pos_++]), kMemorySource});
      }
    } else {
      FM_RETURN_IF_ERROR(Advance(top.source));
    }
    return true;
  }

 private:
  static constexpr size_t kMemorySource = static_cast<size_t>(-1);

  struct HeapEntry {
    std::string record;
    size_t source;
    bool operator>(const HeapEntry& other) const {
      return record > other.record;
    }
  };

  Status Advance(size_t reader_idx) {
    std::string rec;
    FM_ASSIGN_OR_RETURN(const bool more, readers_[reader_idx]->Next(&rec));
    if (more) {
      heap_.push(HeapEntry{std::move(rec), reader_idx});
    }
    return Status::OK();
  }

  std::vector<std::string> run_files_;
  std::vector<std::unique_ptr<RunReader>> readers_;
  std::vector<std::string> memory_run_;
  size_t memory_pos_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
};

}  // namespace

ExternalSorter::ExternalSorter(Options options)
    : options_(std::move(options)),
      sorter_id_(g_next_sorter_id.fetch_add(1, std::memory_order_relaxed)) {}

ExternalSorter::~ExternalSorter() {
  // Remove any spilled runs still owned here: Finish() was never called,
  // or it failed before handing the runs to a MergeStream (which then
  // owns their cleanup).
  for (const auto& path : run_files_) {
    ::unlink(path.c_str());
  }
}

Status ExternalSorter::Add(std::string_view record) {
  if (finished_) {
    return Status::InvalidArgument("Add() after Finish()");
  }
  buffer_.emplace_back(record);
  buffered_bytes_ += record.size() + sizeof(std::string);
  ++record_count_;
  if (buffered_bytes_ >= options_.memory_budget_bytes) {
    FM_RETURN_IF_ERROR(SpillRun());
  }
  return Status::OK();
}

Status ExternalSorter::SpillRun() {
  FM_FAIL_POINT("extsort.spill");
  std::sort(buffer_.begin(), buffer_.end());
  const std::string path = StringPrintf(
      "%s/fm_sort_run_%d_%llu_%zu.tmp", options_.temp_dir.c_str(),
      ::getpid(), static_cast<unsigned long long>(sorter_id_),
      run_files_.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    return Status::IOError(
        StringPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  for (const auto& rec : buffer_) {
    const uint32_t len = static_cast<uint32_t>(rec.size());
    if (std::fwrite(&len, 1, sizeof(len), f) != sizeof(len) ||
        (len > 0 && std::fwrite(rec.data(), 1, len, f) != len)) {
      std::fclose(f);
      ::unlink(path.c_str());
      return Status::IOError("short write to run file");
    }
  }
  if (std::fclose(f) != 0) {
    ::unlink(path.c_str());
    return Status::IOError("close of run file failed");
  }
  run_files_.push_back(path);
  buffer_.clear();
  buffer_.shrink_to_fit();
  buffered_bytes_ = 0;
  return Status::OK();
}

Result<std::unique_ptr<SortedStream>> ExternalSorter::Finish() {
  if (finished_) {
    return Status::InvalidArgument("Finish() called twice");
  }
  FM_FAIL_POINT("extsort.finish");
  finished_ = true;
  std::sort(buffer_.begin(), buffer_.end());
  if (run_files_.empty()) {
    return std::unique_ptr<SortedStream>(
        std::make_unique<VectorStream>(std::move(buffer_)));
  }
  auto merge = std::make_unique<MergeStream>(std::move(run_files_),
                                             std::move(buffer_));
  FM_RETURN_IF_ERROR(merge->Init());
  return std::unique_ptr<SortedStream>(std::move(merge));
}

}  // namespace fuzzymatch

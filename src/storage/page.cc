#include "storage/page.h"

#include <cstring>
#include <vector>

#include "common/logging.h"

namespace fuzzymatch {

namespace {
constexpr uint16_t kTombstone = 0xFFFF;
}

uint16_t Page::ReadU16(size_t off) const {
  uint16_t v;
  std::memcpy(&v, data_ + off, sizeof(v));
  return v;
}

void Page::WriteU16(size_t off, uint16_t v) {
  std::memcpy(data_ + off, &v, sizeof(v));
}

uint32_t Page::ReadU32(size_t off) const {
  uint32_t v;
  std::memcpy(&v, data_ + off, sizeof(v));
  return v;
}

void Page::WriteU32(size_t off, uint32_t v) {
  std::memcpy(data_ + off, &v, sizeof(v));
}

void Page::Init(PageType type) {
  std::memset(data_, 0, kPageSize);
  WriteU16(kTypeOff, static_cast<uint16_t>(type));
  WriteU16(kSlotCountOff, 0);
  WriteU16(kFreeEndOff, static_cast<uint16_t>(kPageSize));
  WriteU32(kNextPageOff, kInvalidPageId);
}

PageType Page::type() const {
  return static_cast<PageType>(ReadU16(kTypeOff));
}

void Page::set_type(PageType type) {
  WriteU16(kTypeOff, static_cast<uint16_t>(type));
}

uint16_t Page::slot_count() const { return ReadU16(kSlotCountOff); }

PageId Page::next_page() const { return ReadU32(kNextPageOff); }

void Page::set_next_page(PageId id) { WriteU32(kNextPageOff, id); }

uint32_t Page::lsn() const { return ReadU32(kLsnOff); }

void Page::set_lsn(uint32_t lsn) { WriteU32(kLsnOff, lsn); }

size_t Page::FreeSpace() const {
  const size_t slots_end = SlotDirOff(slot_count());
  const size_t free_end = ReadU16(kFreeEndOff);
  FM_CHECK_LE(slots_end, free_end);
  return free_end - slots_end;
}

std::optional<SlotId> Page::Insert(std::string_view record) {
  FM_CHECK_LE(record.size(), kMaxRecordSize);
  if (!Fits(record.size())) {
    return std::nullopt;
  }
  const uint16_t count = slot_count();
  const uint16_t new_free_end =
      static_cast<uint16_t>(ReadU16(kFreeEndOff) - record.size());
  std::memcpy(data_ + new_free_end, record.data(), record.size());
  WriteU16(kFreeEndOff, new_free_end);
  WriteU16(SlotDirOff(count), new_free_end);
  WriteU16(SlotDirOff(count) + 2, static_cast<uint16_t>(record.size()));
  WriteU16(kSlotCountOff, static_cast<uint16_t>(count + 1));
  return count;
}

bool Page::InsertAt(SlotId pos, std::string_view record) {
  FM_CHECK_LE(record.size(), kMaxRecordSize);
  const uint16_t count = slot_count();
  FM_CHECK_LE(pos, count);
  if (!Fits(record.size())) {
    return false;
  }
  const uint16_t new_free_end =
      static_cast<uint16_t>(ReadU16(kFreeEndOff) - record.size());
  std::memcpy(data_ + new_free_end, record.data(), record.size());
  WriteU16(kFreeEndOff, new_free_end);
  // Shift directory entries [pos, count) up by one slot.
  std::memmove(data_ + SlotDirOff(pos + 1), data_ + SlotDirOff(pos),
               static_cast<size_t>(count - pos) * kSlotSize);
  WriteU16(SlotDirOff(pos), new_free_end);
  WriteU16(SlotDirOff(pos) + 2, static_cast<uint16_t>(record.size()));
  WriteU16(kSlotCountOff, static_cast<uint16_t>(count + 1));
  return true;
}

bool Page::RemoveAt(SlotId pos) {
  const uint16_t count = slot_count();
  if (pos >= count) {
    return false;
  }
  std::memmove(data_ + SlotDirOff(pos), data_ + SlotDirOff(pos + 1),
               static_cast<size_t>(count - pos - 1) * kSlotSize);
  WriteU16(kSlotCountOff, static_cast<uint16_t>(count - 1));
  return true;
}

std::optional<std::string_view> Page::Get(SlotId slot) const {
  if (slot >= slot_count()) {
    return std::nullopt;
  }
  const uint16_t off = ReadU16(SlotDirOff(slot));
  if (off == kTombstone) {
    return std::nullopt;
  }
  const uint16_t len = ReadU16(SlotDirOff(slot) + 2);
  return std::string_view(data_ + off, len);
}

bool Page::Delete(SlotId slot) {
  if (slot >= slot_count()) {
    return false;
  }
  const size_t dir = SlotDirOff(slot);
  if (ReadU16(dir) == kTombstone) {
    return false;
  }
  WriteU16(dir, kTombstone);
  WriteU16(dir + 2, 0);
  return true;
}

bool Page::UpdateInPlace(SlotId slot, std::string_view record) {
  if (slot >= slot_count()) {
    return false;
  }
  const size_t dir = SlotDirOff(slot);
  const uint16_t off = ReadU16(dir);
  if (off == kTombstone) {
    return false;
  }
  const uint16_t len = ReadU16(dir + 2);
  if (record.size() > len) {
    return false;
  }
  std::memcpy(data_ + off, record.data(), record.size());
  WriteU16(dir + 2, static_cast<uint16_t>(record.size()));
  return true;
}

void Page::Compact() {
  const uint16_t count = slot_count();
  // Collect live records (slot, offset, length), then re-lay them out from
  // the end of the page preserving slot ids.
  struct Live {
    SlotId slot;
    uint16_t off;
    uint16_t len;
  };
  std::vector<Live> live;
  live.reserve(count);
  for (SlotId s = 0; s < count; ++s) {
    const uint16_t off = ReadU16(SlotDirOff(s));
    if (off != kTombstone) {
      live.push_back({s, off, ReadU16(SlotDirOff(s) + 2)});
    }
  }
  std::vector<char> scratch(kPageSize);
  uint16_t free_end = static_cast<uint16_t>(kPageSize);
  for (const Live& l : live) {
    free_end = static_cast<uint16_t>(free_end - l.len);
    std::memcpy(scratch.data() + free_end, data_ + l.off, l.len);
  }
  std::memcpy(data_ + free_end, scratch.data() + free_end,
              kPageSize - free_end);
  // Rewrite slot offsets in the same order the data was copied.
  uint16_t cursor = static_cast<uint16_t>(kPageSize);
  for (const Live& l : live) {
    cursor = static_cast<uint16_t>(cursor - l.len);
    WriteU16(SlotDirOff(l.slot), cursor);
  }
  WriteU16(kFreeEndOff, free_end);
}

}  // namespace fuzzymatch

#include "storage/key_codec.h"

namespace fuzzymatch {

KeyEncoder& KeyEncoder::AppendString(std::string_view s) {
  for (const char c : s) {
    if (c == '\x00') {
      key_.push_back('\x00');
      key_.push_back('\x01');
    } else {
      key_.push_back(c);
    }
  }
  key_.push_back('\x00');
  key_.push_back('\x00');
  return *this;
}

KeyEncoder& KeyEncoder::AppendU32(uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    key_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
  return *this;
}

KeyEncoder& KeyEncoder::AppendU64(uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    key_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
  return *this;
}

KeyEncoder& KeyEncoder::AppendU8(uint8_t v) {
  key_.push_back(static_cast<char>(v));
  return *this;
}

Result<std::string> KeyDecoder::ReadString() {
  std::string out;
  size_t i = 0;
  while (i < rest_.size()) {
    const char c = rest_[i];
    if (c != '\x00') {
      out.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= rest_.size()) {
      return Status::Corruption("truncated string key component");
    }
    const char next = rest_[i + 1];
    if (next == '\x00') {
      rest_.remove_prefix(i + 2);
      return out;
    }
    if (next == '\x01') {
      out.push_back('\x00');
      i += 2;
      continue;
    }
    return Status::Corruption("bad escape in string key component");
  }
  return Status::Corruption("unterminated string key component");
}

Result<uint32_t> KeyDecoder::ReadU32() {
  if (rest_.size() < 4) {
    return Status::Corruption("truncated u32 key component");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<uint8_t>(rest_[i]);
  }
  rest_.remove_prefix(4);
  return v;
}

Result<uint64_t> KeyDecoder::ReadU64() {
  if (rest_.size() < 8) {
    return Status::Corruption("truncated u64 key component");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(rest_[i]);
  }
  rest_.remove_prefix(8);
  return v;
}

Result<uint8_t> KeyDecoder::ReadU8() {
  if (rest_.empty()) {
    return Status::Corruption("truncated u8 key component");
  }
  const uint8_t v = static_cast<uint8_t>(rest_[0]);
  rest_.remove_prefix(1);
  return v;
}

}  // namespace fuzzymatch

// ExternalSorter: sorts an arbitrary-size stream of byte-string records.
//
// This plays the role of the SQL "ORDER BY" in the paper's ETI-query
// (Section 4.2): the pre-ETI rows are fed in, sorted runs spill to temp
// files when the memory budget is exceeded, and a k-way merge streams the
// rows back grouped by [QGram, Coordinate, Column].
//
// Records are compared lexicographically as raw bytes; callers encode sort
// keys order-preservingly (see storage/key_codec.h).

#ifndef FUZZYMATCH_STORAGE_EXTERNAL_SORT_H_
#define FUZZYMATCH_STORAGE_EXTERNAL_SORT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fuzzymatch {

/// Streams records back in sorted order after ExternalSorter::Finish().
class SortedStream {
 public:
  virtual ~SortedStream() = default;

  /// Advances to the next record; false at end. On true fills `record`.
  virtual Result<bool> Next(std::string* record) = 0;
};

/// Accumulates records, then produces them in sorted order.
///
/// Spill files are named fm_sort_run_<pid>_<sorter>_<run>.tmp, where
/// <sorter> is a process-wide id — any number of sorters may share one
/// temp_dir (the parallel ETI build runs one per partition) without their
/// runs colliding. Every spilled run is unlinked exactly once: by the
/// merge stream after a successful Finish(), or by the sorter's own
/// destructor on early destruction and on every Finish() error path.
class ExternalSorter {
 public:
  struct Options {
    /// In-memory buffer budget before spilling a run (bytes of record
    /// payload, excluding bookkeeping).
    size_t memory_budget_bytes = 64u << 20;
    /// Directory for spill files; must exist.
    std::string temp_dir = "/tmp";
  };

  explicit ExternalSorter(Options options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Adds one record (any bytes, including embedded NULs).
  Status Add(std::string_view record);

  /// Ends input and returns the merged sorted stream. Call once.
  Result<std::unique_ptr<SortedStream>> Finish();

  /// Number of runs spilled to disk so far (0 = fully in-memory sort).
  size_t spilled_runs() const { return run_files_.size(); }

  /// Total records added.
  uint64_t record_count() const { return record_count_; }

 private:
  Status SpillRun();

  Options options_;
  uint64_t sorter_id_ = 0;
  std::vector<std::string> buffer_;
  size_t buffered_bytes_ = 0;
  uint64_t record_count_ = 0;
  std::vector<std::string> run_files_;
  bool finished_ = false;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_EXTERNAL_SORT_H_

// Database: catalog + storage for a set of tables and secondary indexes.
//
// This is the "current operational data warehouse" stand-in the paper
// deploys over: relations and B+-tree indexes persisted in one page file.
// The catalog lives in page 0 and is rewritten by Checkpoint().

#ifndef FUZZYMATCH_STORAGE_DATABASE_H_
#define FUZZYMATCH_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/btree.h"
#include "storage/pager.h"
#include "storage/table.h"

namespace fuzzymatch {

struct DatabaseOptions {
  /// Backing file; empty selects a non-persistent in-memory store.
  std::string path;
  /// Buffer pool capacity in pages (8 KiB each).
  size_t pool_pages = 4096;
};

/// One storage namespace.
///
/// Thread safety (the shared-read contract): after the catalog and the
/// tables/indexes it hands out are built, any number of threads may read
/// concurrently — Table::Get/Scan, BPlusTree::Get/iteration and
/// Eti::Lookup all funnel into the BufferPool, whose internal latch makes
/// the read path safe. Catalog mutations (CreateTable/DropTable/
/// CreateIndex/DropIndex/Checkpoint) and row/index writes remain
/// exclusive: run them before serving starts or behind an external write
/// lock. The fuzzy-match deployment fits this exactly — the reference
/// relation and the ETI are immutable once built.
class Database {
 public:
  /// Opens (or creates) a database.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; fails with AlreadyExists on name collision.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table; NotFound if absent.
  Result<Table*> GetTable(const std::string& name);

  /// Removes a table from the catalog. Its pages are not reclaimed (this
  /// engine has no free-space map); used for dropping temporary relations.
  Status DropTable(const std::string& name);

  /// Creates an empty secondary index (a standalone B+-tree).
  Result<BPlusTree*> CreateIndex(const std::string& name);

  /// Looks up an index; NotFound if absent.
  Result<BPlusTree*> GetIndex(const std::string& name);

  Status DropIndex(const std::string& name);

  /// Persists the catalog and flushes dirty pages. For file-backed
  /// databases this is what makes state durable across Open() calls.
  Status Checkpoint();

  BufferPool* buffer_pool() { return pool_.get(); }

  /// Backing file path; empty for in-memory stores. Lets co-located
  /// scratch data (e.g. ETI build spill runs) default to the database's
  /// own directory instead of /tmp.
  const std::string& path() const { return path_; }

 private:
  Database() = default;

  Status LoadCatalog();
  Status SaveCatalog();

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  // Stable addresses for handed-out pointers.
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<BPlusTree>> indexes_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_DATABASE_H_

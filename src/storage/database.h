// Database: catalog + storage for a set of tables and secondary indexes.
//
// This is the "current operational data warehouse" stand-in the paper
// deploys over: relations and B+-tree indexes persisted in one page file.
// The catalog lives in page 0 and is rewritten by Checkpoint().

#ifndef FUZZYMATCH_STORAGE_DATABASE_H_
#define FUZZYMATCH_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/btree.h"
#include "storage/pager.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace fuzzymatch {

/// Name suffix of shadow tables/indexes an online ETI rebuild builds
/// next to the live ones. Open() drops orphans left by a rebuild that
/// crashed before its atomic swap.
inline constexpr std::string_view kRebuildNameSuffix = "~rebuild";

struct DatabaseOptions {
  /// Backing file; empty selects a non-persistent in-memory store.
  std::string path;
  /// Buffer pool capacity in pages (8 KiB each).
  size_t pool_pages = 4096;
  /// Write-ahead logging for maintenance transactions (file-backed
  /// stores only; in-memory stores never log). The log lives at
  /// `<path>.wal` and is replayed by Open() after a crash.
  bool enable_wal = true;
  /// When the log fsyncs (the `--wal-fsync` server flag).
  WalFsyncMode wal_fsync = WalFsyncMode::kGroup;
  /// Group-commit accumulation window, microseconds.
  uint32_t wal_group_window_us = 100;
};

/// One storage namespace.
///
/// Thread safety (the shared-read contract): after the catalog and the
/// tables/indexes it hands out are built, any number of threads may read
/// concurrently — Table::Get/Scan, BPlusTree::Get/iteration and
/// Eti::Lookup all funnel into the BufferPool, whose internal latch makes
/// the read path safe. Catalog mutations (CreateTable/DropTable/
/// CreateIndex/DropIndex/Checkpoint) and row/index writes remain
/// exclusive: run them before serving starts or behind an external write
/// lock. The fuzzy-match deployment fits this exactly — the reference
/// relation and the ETI are immutable once built.
class Database {
 public:
  /// Opens (or creates) a database.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; fails with AlreadyExists on name collision.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table; NotFound if absent.
  Result<Table*> GetTable(const std::string& name);

  /// Removes a table from the catalog. Its pages are not reclaimed (this
  /// engine has no free-space map); used for dropping temporary relations.
  Status DropTable(const std::string& name);

  /// Creates an empty secondary index (a standalone B+-tree).
  Result<BPlusTree*> CreateIndex(const std::string& name);

  /// Looks up an index; NotFound if absent.
  Result<BPlusTree*> GetIndex(const std::string& name);

  Status DropIndex(const std::string& name);

  /// Renames a table/index in the catalog (AlreadyExists on collision,
  /// NotFound if absent). Handed-out pointers stay valid. Used by the
  /// online ETI rebuild to move the shadow index into place.
  Status RenameTable(const std::string& from, const std::string& to);
  Status RenameIndex(const std::string& from, const std::string& to);

  /// Removes a table/index from the catalog but keeps the object alive
  /// until the Database is destroyed, so in-flight readers holding the
  /// pointer are safe. The swap half of the online rebuild.
  Status RetireTable(const std::string& name);
  Status RetireIndex(const std::string& name);

  /// Starts a maintenance transaction: every page dirtied until
  /// CommitMaintenance() is WAL-logged as one atomic batch. No-op when
  /// the store has no WAL. Maintenance ops must be externally serialized
  /// (the FuzzyMatcher facade holds its maintenance lock across this).
  void BeginMaintenance();

  /// Commits the open maintenance transaction: persists the catalog
  /// (tid counters live only there) and group-commits the dirtied pages.
  /// The operation is acknowledged only after this returns OK; on error
  /// the transaction stays open and nothing was made durable.
  Status CommitMaintenance();

  /// Final group commit + fsync of the log (graceful-shutdown drain).
  /// Commits a dangling maintenance transaction first.
  Status FlushWal();

  /// Persists the catalog and flushes dirty pages. For file-backed
  /// databases this is what makes state durable across Open() calls.
  /// Ordering contract: data pages are flushed and fsynced before the
  /// page-0 catalog is rewritten, so a crash in the window can never
  /// persist a catalog pointing at unwritten pages. With a WAL, the log
  /// is truncated afterwards. Requires no concurrent maintenance.
  Status Checkpoint();

  BufferPool* buffer_pool() { return pool_.get(); }

  /// The write-ahead log; nullptr for in-memory stores or enable_wal
  /// = false.
  Wal* wal() { return wal_.get(); }

  /// What log replay did during Open() (zeroes when there was no log).
  const Wal::ReplayStats& replay_stats() const { return replay_stats_; }

  /// Backing file path; empty for in-memory stores. Lets co-located
  /// scratch data (e.g. ETI build spill runs) default to the database's
  /// own directory instead of /tmp.
  const std::string& path() const { return path_; }

 private:
  Database() = default;

  Status LoadCatalog();
  Status SaveCatalog();
  /// Drops orphan shadow tables/indexes a crashed rebuild left behind.
  void SweepRebuildOrphans();
  /// Unlinks spill files (fm_sort_run_*.tmp) of dead processes in the
  /// database's directory.
  void SweepTempFiles();

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Wal> wal_;
  uint64_t db_id_ = 0;           // random identity minted at create time
  uint64_t checkpoint_lsn_ = 1;  // WAL start LSN as of the last checkpoint
  Wal::ReplayStats replay_stats_;
  // Stable addresses for handed-out pointers.
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<BPlusTree>> indexes_;
  // Retired but still-referenced objects (see RetireTable).
  std::vector<std::unique_ptr<Table>> retired_tables_;
  std::vector<std::unique_ptr<BPlusTree>> retired_indexes_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_DATABASE_H_

// B+-tree with variable-length byte-string keys and values.
//
// This is the "standard B+-tree index" the paper relies on: the ETI
// relation is indexed on [QGram, Coordinate, Column] and the reference
// relation on Tid. Keys are compared in memcmp order; composite keys are
// produced by KeyEncoder so byte order matches logical order.
//
// Layout: internal nodes store (separator, child) entries plus a leftmost
// child; leaves store (key, value) entries and are chained left-to-right
// for range scans. Node pages keep their slot directory sorted by key.
//
// Keys are unique. Deletion removes the entry without rebalancing
// (underfull pages are tolerated, as in several production engines); the
// fuzzy-match workload is build-once/read-many.

#ifndef FUZZYMATCH_STORAGE_BTREE_H_
#define FUZZYMATCH_STORAGE_BTREE_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace fuzzymatch {

/// A single B+-tree. The root page id changes as the tree grows; callers
/// persisting the tree must re-read root() after mutations (the Database
/// catalog does this at checkpoint).
///
/// Concurrency: the read path (Get, iterators, Count, Height) is safe
/// from any number of threads once the tree is built — node pages are
/// pinned through the BufferPool's latch and never mutated by readers.
/// Insert/Put/Delete are exclusive (no node latching): serialize writes
/// externally and do not interleave them with reads.
class BPlusTree {
 public:
  /// Creates an empty tree (root = empty leaf).
  static Result<BPlusTree> Create(BufferPool* pool);

  /// Attaches to an existing tree by root page id.
  static BPlusTree Open(BufferPool* pool, PageId root) {
    return BPlusTree(pool, root);
  }

  /// Inserts a new key; fails with AlreadyExists if present.
  Status Insert(std::string_view key, std::string_view value);

  /// Inserts or overwrites.
  Status Put(std::string_view key, std::string_view value);

  /// Point lookup; NotFound if absent.
  Result<std::string> Get(std::string_view key) const;

  /// Removes a key; NotFound if absent.
  Status Delete(std::string_view key);

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    /// Positions at the first entry with key >= `key`.
    Status Seek(std::string_view key);

    /// Positions at the smallest key.
    Status SeekToFirst();

    /// True if positioned on an entry.
    bool Valid() const { return valid_; }

    /// Current entry (valid until the next Next/Seek).
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }

    /// Advances; invalidates at the end.
    Status Next();

   private:
    friend class BPlusTree;
    explicit Iterator(const BPlusTree* tree) : tree_(tree) {}
    Status LoadEntry();
    /// Skips empty leaves (possible after deletions).
    Status SkipEmptyLeaves();

    const BPlusTree* tree_;
    PageId leaf_ = kInvalidPageId;
    uint16_t pos_ = 0;
    bool valid_ = false;
    std::string key_;
    std::string value_;
  };

  Iterator NewIterator() const { return Iterator(this); }

  /// Current root page id (persist this).
  PageId root() const { return root_; }

  /// Number of entries (maintained by this handle; after Open it is
  /// recomputed lazily by Count()).
  Result<uint64_t> Count() const;

  /// Tree height (1 = root is a leaf).
  Result<int> Height() const;

  /// Hard cap on key+value size so a node always fits several entries.
  static constexpr size_t kMaxEntrySize = 1800;

 private:
  BPlusTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  struct SplitResult {
    std::string separator;  // smallest key in the new right sibling
    PageId right;
  };

  Status PutImpl(std::string_view key, std::string_view value,
                 bool allow_overwrite);
  /// Recursive insert; sets `split` when the child had to split.
  Status InsertInto(PageId node, std::string_view key, std::string_view value,
                    bool allow_overwrite, std::optional<SplitResult>* split);
  Status SplitLeaf(PageGuard& guard, std::optional<SplitResult>* split);
  Status SplitInternal(PageGuard& guard, std::optional<SplitResult>* split);
  /// Descends to the leaf that would contain `key`.
  Result<PageId> FindLeaf(std::string_view key) const;
  Result<PageId> LeftmostLeaf() const;

  BufferPool* pool_;
  PageId root_;
};

namespace btree_internal {

/// Leaf entry accessors (record = u16 klen | key | value).
std::string EncodeLeafEntry(std::string_view key, std::string_view value);
std::string_view LeafKey(std::string_view record);
std::string_view LeafValue(std::string_view record);

/// Internal entry accessors (record = u16 klen | key | u32 child).
std::string EncodeInternalEntry(std::string_view key, PageId child);
std::string_view InternalKey(std::string_view record);
PageId InternalChild(std::string_view record);

/// Leftmost child of an internal node lives in the reserved header bytes.
PageId GetLeftmostChild(const Page& page);
void SetLeftmostChild(Page& page, PageId child);

/// Binary search over a sorted node: index of the first entry whose key is
/// >= `key` (== slot_count() if none). `is_leaf` selects the key accessor.
uint16_t LowerBound(const Page& page, std::string_view key, bool is_leaf);

}  // namespace btree_internal

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_BTREE_H_

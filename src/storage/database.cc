#include "storage/database.h"

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <random>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/varint.h"
#include "fault/failpoint.h"

namespace fuzzymatch {

namespace {

constexpr uint32_t kCatalogMagic = 0x464d4442;  // "FMDB"
constexpr PageId kCatalogPage = 0;
// Catalog page layout after the page header:
//   magic(4) blob_len(4) db_id(8) checkpoint_lsn(8) blob
constexpr size_t kCatalogPrefix = 24;

uint64_t MintDbId() {
  std::random_device rd;
  uint64_t id = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  id ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return id == 0 ? 1 : id;
}

std::string WalPathFor(const std::string& db_path) {
  return db_path + ".wal";
}

// Reads the identity fields straight from page 0 of an unopened store,
// before the buffer pool exists (replay must run before any caching).
bool ReadIdentityRaw(Pager* pager, uint64_t* db_id, uint64_t* ckpt_lsn) {
  if (pager->page_count() == 0) {
    return false;
  }
  std::vector<char> buf(kPageSize);
  if (!pager->ReadPage(kCatalogPage, buf.data()).ok()) {
    return false;
  }
  const char* p = buf.data() + Page::kHeaderSize;
  uint32_t magic;
  std::memcpy(&magic, p, 4);
  if (magic != kCatalogMagic) {
    return false;
  }
  std::memcpy(db_id, p + 8, 8);
  std::memcpy(ckpt_lsn, p + 16, 8);
  return true;
}

void PutString(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

Result<std::string> GetString(std::string_view* in) {
  FM_ASSIGN_OR_RETURN(const uint64_t len, GetVarint64(in));
  if (in->size() < len) {
    return Status::Corruption("truncated catalog string");
  }
  std::string out(in->substr(0, len));
  in->remove_prefix(len);
  return out;
}

}  // namespace

Database::~Database() {
  // pool_ can be null when Open() failed before constructing it (e.g. a
  // crash injected during log replay) and the half-built db unwinds.
  if (pager_ && pool_ && pager_->is_file_backed()) {
    // Best-effort durability on clean shutdown.
    const Status s = Checkpoint();
    if (!s.ok()) {
      FM_LOG(Warning) << "checkpoint on close failed: " << s;
    }
  }
  // The WAL must close (draining its buffer) before the pager goes away.
  wal_.reset();
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->path_ = options.path;
  const bool fresh_memory = options.path.empty();
  bool fresh_file = false;
  if (fresh_memory) {
    db->pager_ = Pager::OpenInMemory();
  } else {
    FM_ASSIGN_OR_RETURN(db->pager_, Pager::OpenFile(options.path));
    fresh_file = db->pager_->page_count() == 0;
  }

  const bool use_wal = !fresh_memory && options.enable_wal;
  if (use_wal && !fresh_file) {
    // Recovery: redo the committed log prefix onto the raw pager, before
    // the buffer pool can cache stale pages. The identity guard inside
    // Replay() discards a log that does not belong to this exact file
    // state (e.g. a stale .wal next to a restored backup copy).
    uint64_t db_id = 0;
    uint64_t ckpt_lsn = 0;
    if (ReadIdentityRaw(db->pager_.get(), &db_id, &ckpt_lsn)) {
      FM_ASSIGN_OR_RETURN(
          db->replay_stats_,
          Wal::Replay(WalPathFor(options.path), db_id, ckpt_lsn,
                      db->pager_.get()));
      if (db->replay_stats_.pages_applied + db->replay_stats_.undo_applied >
          0) {
        // Replayed pages must be durable before the log is reset below.
        FM_RETURN_IF_ERROR(db->pager_->Sync());
      }
    }
  }

  db->pool_ =
      std::make_unique<BufferPool>(db->pager_.get(), options.pool_pages);

  if (fresh_memory || fresh_file) {
    // Reserve page 0 for the catalog.
    FM_ASSIGN_OR_RETURN(PageGuard guard, db->pool_->New());
    if (guard.page_id() != kCatalogPage) {
      return Status::Internal("catalog page is not page 0");
    }
    guard.page().Init(PageType::kMeta);
    guard.MarkDirty();
    db->db_id_ = MintDbId();
    FM_RETURN_IF_ERROR(db->SaveCatalog());
  } else {
    FM_RETURN_IF_ERROR(db->LoadCatalog());
    db->SweepRebuildOrphans();
  }

  if (use_wal) {
    const uint64_t start_lsn =
        std::max(db->replay_stats_.next_lsn, db->checkpoint_lsn_);
    FM_ASSIGN_OR_RETURN(
        db->wal_,
        Wal::Open(WalPathFor(options.path), db->db_id_, start_lsn,
                  WalOptions{options.wal_fsync, options.wal_group_window_us}));
    db->pool_->SetWal(db->wal_.get());
    db->checkpoint_lsn_ = start_lsn;
    // Re-establish the invariant `catalog checkpoint_lsn == log start`:
    // the log was just reset (its old content is durable in the main
    // file), so the catalog must say so before any new commit.
    FM_RETURN_IF_ERROR(db->Checkpoint());
  }

  if (!fresh_memory) {
    db->SweepTempFiles();
  }
  return db;
}

Status Database::SaveCatalog() {
  std::string blob;
  PutVarint64(&blob, tables_.size());
  for (const auto& [name, table] : tables_) {
    PutString(&blob, name);
    table->schema_.EncodeTo(&blob);
    PutVarint64(&blob, table->heap_.first_page());
    PutVarint64(&blob, table->tid_index_.root());
    PutVarint64(&blob, table->next_tid_);
    PutVarint64(&blob, table->row_count_);
  }
  PutVarint64(&blob, indexes_.size());
  for (const auto& [name, index] : indexes_) {
    PutString(&blob, name);
    PutVarint64(&blob, index->root());
  }

  if (blob.size() + kCatalogPrefix > kPageSize - Page::kHeaderSize) {
    return Status::ResourceExhausted("catalog exceeds one page");
  }
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(kCatalogPage));
  char* p = guard.data() + Page::kHeaderSize;
  std::memcpy(p, &kCatalogMagic, 4);
  const uint32_t len = static_cast<uint32_t>(blob.size());
  std::memcpy(p + 4, &len, 4);
  std::memcpy(p + 8, &db_id_, 8);
  std::memcpy(p + 16, &checkpoint_lsn_, 8);
  std::memcpy(p + kCatalogPrefix, blob.data(), blob.size());
  guard.MarkDirty();
  return Status::OK();
}

Status Database::LoadCatalog() {
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(kCatalogPage));
  const char* p = guard.data() + Page::kHeaderSize;
  uint32_t magic, len;
  std::memcpy(&magic, p, 4);
  std::memcpy(&len, p + 4, 4);
  if (magic != kCatalogMagic) {
    return Status::Corruption("bad catalog magic");
  }
  if (len > kPageSize - Page::kHeaderSize - kCatalogPrefix) {
    return Status::Corruption("bad catalog length");
  }
  std::memcpy(&db_id_, p + 8, 8);
  std::memcpy(&checkpoint_lsn_, p + 16, 8);
  std::string blob(p + kCatalogPrefix, len);
  std::string_view in = blob;

  FM_ASSIGN_OR_RETURN(const uint64_t num_tables, GetVarint64(&in));
  for (uint64_t i = 0; i < num_tables; ++i) {
    FM_ASSIGN_OR_RETURN(std::string name, GetString(&in));
    FM_ASSIGN_OR_RETURN(Schema schema, Schema::Decode(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t first_page, GetVarint64(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t index_root, GetVarint64(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t next_tid, GetVarint64(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t row_count, GetVarint64(&in));
    FM_ASSIGN_OR_RETURN(
        HeapFile heap,
        HeapFile::Open(pool_.get(), static_cast<PageId>(first_page)));
    BPlusTree tid_index =
        BPlusTree::Open(pool_.get(), static_cast<PageId>(index_root));
    auto table = std::unique_ptr<Table>(
        new Table(name, std::move(schema), std::move(heap),
                  std::move(tid_index), static_cast<Tid>(next_tid),
                  row_count));
    tables_.emplace(std::move(name), std::move(table));
  }

  FM_ASSIGN_OR_RETURN(const uint64_t num_indexes, GetVarint64(&in));
  for (uint64_t i = 0; i < num_indexes; ++i) {
    FM_ASSIGN_OR_RETURN(std::string name, GetString(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t root, GetVarint64(&in));
    auto index = std::make_unique<BPlusTree>(
        BPlusTree::Open(pool_.get(), static_cast<PageId>(root)));
    indexes_.emplace(std::move(name), std::move(index));
  }
  return Status::OK();
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(
        StringPrintf("table %s exists", name.c_str()));
  }
  FM_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_.get()));
  FM_ASSIGN_OR_RETURN(BPlusTree tid_index, BPlusTree::Create(pool_.get()));
  auto table = std::unique_ptr<Table>(
      new Table(name, std::move(schema), std::move(heap),
                std::move(tid_index), /*next_tid=*/0, /*row_count=*/0));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StringPrintf("no table %s", name.c_str()));
  }
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound(StringPrintf("no table %s", name.c_str()));
  }
  return Status::OK();
}

Result<BPlusTree*> Database::CreateIndex(const std::string& name) {
  if (indexes_.count(name) > 0) {
    return Status::AlreadyExists(
        StringPrintf("index %s exists", name.c_str()));
  }
  FM_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool_.get()));
  auto index = std::make_unique<BPlusTree>(std::move(tree));
  BPlusTree* ptr = index.get();
  indexes_.emplace(name, std::move(index));
  return ptr;
}

Result<BPlusTree*> Database::GetIndex(const std::string& name) {
  const auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound(StringPrintf("no index %s", name.c_str()));
  }
  return it->second.get();
}

Status Database::DropIndex(const std::string& name) {
  if (indexes_.erase(name) == 0) {
    return Status::NotFound(StringPrintf("no index %s", name.c_str()));
  }
  return Status::OK();
}

Status Database::RenameTable(const std::string& from, const std::string& to) {
  if (tables_.count(to) > 0) {
    return Status::AlreadyExists(StringPrintf("table %s exists", to.c_str()));
  }
  auto node = tables_.extract(from);
  if (node.empty()) {
    return Status::NotFound(StringPrintf("no table %s", from.c_str()));
  }
  node.key() = to;
  node.mapped()->name_ = to;
  tables_.insert(std::move(node));
  return Status::OK();
}

Status Database::RenameIndex(const std::string& from, const std::string& to) {
  if (indexes_.count(to) > 0) {
    return Status::AlreadyExists(StringPrintf("index %s exists", to.c_str()));
  }
  auto node = indexes_.extract(from);
  if (node.empty()) {
    return Status::NotFound(StringPrintf("no index %s", from.c_str()));
  }
  node.key() = to;
  indexes_.insert(std::move(node));
  return Status::OK();
}

Status Database::RetireTable(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StringPrintf("no table %s", name.c_str()));
  }
  retired_tables_.push_back(std::move(it->second));
  tables_.erase(it);
  return Status::OK();
}

Status Database::RetireIndex(const std::string& name) {
  const auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound(StringPrintf("no index %s", name.c_str()));
  }
  retired_indexes_.push_back(std::move(it->second));
  indexes_.erase(it);
  return Status::OK();
}

void Database::BeginMaintenance() { pool_->BeginWalTxn(); }

Status Database::CommitMaintenance() {
  if (!pool_->wal_txn_active()) {
    return Status::OK();
  }
  // The catalog page joins the transaction: tid counters and row counts
  // persist only there, and recovery must not reuse tids of committed
  // inserts.
  FM_RETURN_IF_ERROR(SaveCatalog());
  return pool_->CommitWalTxn();
}

Status Database::FlushWal() {
  if (pool_->wal_txn_active()) {
    FM_RETURN_IF_ERROR(CommitMaintenance());
  }
  if (wal_ != nullptr) {
    return wal_->Sync();
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  FM_FAIL_POINT("db.checkpoint");
  // A dangling maintenance transaction (a failed op the facade could not
  // commit) must not leak uncommitted pages into the flush below.
  if (pool_->wal_txn_active()) {
    FM_RETURN_IF_ERROR(CommitMaintenance());
  }
  const uint64_t ckpt_lsn = wal_ != nullptr ? wal_->next_lsn() : 1;
  // Data pages first, with an fsync barrier: the catalog page must never
  // become durable while pointing at pages the crash kept from the file.
  FM_RETURN_IF_ERROR(pool_->FlushAllExcept(kCatalogPage));
  FM_FAIL_POINT("db.checkpoint_barrier");
  checkpoint_lsn_ = ckpt_lsn;
  FM_RETURN_IF_ERROR(SaveCatalog());
  FM_RETURN_IF_ERROR(pool_->FlushPage(kCatalogPage));
  if (wal_ != nullptr) {
    // Everything the log held is now durable in the main file; reset it.
    // Crash before this point replays the old log; crash after finds an
    // empty log whose start matches the new catalog checkpoint LSN.
    FM_RETURN_IF_ERROR(wal_->Truncate(ckpt_lsn));
  }
  return Status::OK();
}

void Database::SweepRebuildOrphans() {
  std::vector<std::string> doomed_tables;
  for (const auto& [name, table] : tables_) {
    if (name.find(kRebuildNameSuffix) != std::string::npos) {
      doomed_tables.push_back(name);
    }
  }
  std::vector<std::string> doomed_indexes;
  for (const auto& [name, index] : indexes_) {
    if (name.find(kRebuildNameSuffix) != std::string::npos) {
      doomed_indexes.push_back(name);
    }
  }
  for (const auto& name : doomed_tables) {
    FM_LOG(Warning) << "dropping orphan rebuild table " << name;
    tables_.erase(name);
  }
  for (const auto& name : doomed_indexes) {
    FM_LOG(Warning) << "dropping orphan rebuild index " << name;
    indexes_.erase(name);
  }
}

void Database::SweepTempFiles() {
  // Spill files embed their owner's pid; anything owned by a dead
  // process is an orphan of an aborted build/rebuild. Live pids are left
  // alone — parallel tests share temp directories.
  std::string dir = path_;
  const size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return;
  }
  size_t swept = 0;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string_view name(ent->d_name);
    if (name.rfind("fm_sort_run_", 0) != 0 || !name.ends_with(".tmp")) {
      continue;
    }
    const pid_t pid =
        static_cast<pid_t>(std::atol(ent->d_name + strlen("fm_sort_run_")));
    if (pid <= 0 || (::kill(pid, 0) != 0 && errno == ESRCH)) {
      const std::string full = dir + "/" + std::string(name);
      if (::unlink(full.c_str()) == 0) {
        ++swept;
      }
    }
  }
  ::closedir(d);
  if (swept > 0) {
    FM_LOG(Info) << "swept " << swept << " orphan spill file(s) in " << dir;
  }
}

}  // namespace fuzzymatch

#include "storage/database.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/varint.h"
#include "fault/failpoint.h"

namespace fuzzymatch {

namespace {

constexpr uint32_t kCatalogMagic = 0x464d4442;  // "FMDB"
constexpr PageId kCatalogPage = 0;

void PutString(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

Result<std::string> GetString(std::string_view* in) {
  FM_ASSIGN_OR_RETURN(const uint64_t len, GetVarint64(in));
  if (in->size() < len) {
    return Status::Corruption("truncated catalog string");
  }
  std::string out(in->substr(0, len));
  in->remove_prefix(len);
  return out;
}

}  // namespace

Database::~Database() {
  if (pager_ && pager_->is_file_backed()) {
    // Best-effort durability on clean shutdown.
    const Status s = Checkpoint();
    if (!s.ok()) {
      FM_LOG(Warning) << "checkpoint on close failed: " << s;
    }
  }
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->path_ = options.path;
  const bool fresh_memory = options.path.empty();
  bool fresh_file = false;
  if (fresh_memory) {
    db->pager_ = Pager::OpenInMemory();
  } else {
    FM_ASSIGN_OR_RETURN(db->pager_, Pager::OpenFile(options.path));
    fresh_file = db->pager_->page_count() == 0;
  }
  db->pool_ =
      std::make_unique<BufferPool>(db->pager_.get(), options.pool_pages);

  if (fresh_memory || fresh_file) {
    // Reserve page 0 for the catalog.
    FM_ASSIGN_OR_RETURN(PageGuard guard, db->pool_->New());
    if (guard.page_id() != kCatalogPage) {
      return Status::Internal("catalog page is not page 0");
    }
    guard.page().Init(PageType::kMeta);
    guard.MarkDirty();
    FM_RETURN_IF_ERROR(db->SaveCatalog());
  } else {
    FM_RETURN_IF_ERROR(db->LoadCatalog());
  }
  return db;
}

Status Database::SaveCatalog() {
  std::string blob;
  PutVarint64(&blob, tables_.size());
  for (const auto& [name, table] : tables_) {
    PutString(&blob, name);
    table->schema_.EncodeTo(&blob);
    PutVarint64(&blob, table->heap_.first_page());
    PutVarint64(&blob, table->tid_index_.root());
    PutVarint64(&blob, table->next_tid_);
    PutVarint64(&blob, table->row_count_);
  }
  PutVarint64(&blob, indexes_.size());
  for (const auto& [name, index] : indexes_) {
    PutString(&blob, name);
    PutVarint64(&blob, index->root());
  }

  if (blob.size() + 8 > kPageSize - Page::kHeaderSize) {
    return Status::ResourceExhausted("catalog exceeds one page");
  }
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(kCatalogPage));
  char* p = guard.data() + Page::kHeaderSize;
  std::memcpy(p, &kCatalogMagic, 4);
  const uint32_t len = static_cast<uint32_t>(blob.size());
  std::memcpy(p + 4, &len, 4);
  std::memcpy(p + 8, blob.data(), blob.size());
  guard.MarkDirty();
  return Status::OK();
}

Status Database::LoadCatalog() {
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(kCatalogPage));
  const char* p = guard.data() + Page::kHeaderSize;
  uint32_t magic, len;
  std::memcpy(&magic, p, 4);
  std::memcpy(&len, p + 4, 4);
  if (magic != kCatalogMagic) {
    return Status::Corruption("bad catalog magic");
  }
  if (len > kPageSize - Page::kHeaderSize - 8) {
    return Status::Corruption("bad catalog length");
  }
  std::string blob(p + 8, len);
  std::string_view in = blob;

  FM_ASSIGN_OR_RETURN(const uint64_t num_tables, GetVarint64(&in));
  for (uint64_t i = 0; i < num_tables; ++i) {
    FM_ASSIGN_OR_RETURN(std::string name, GetString(&in));
    FM_ASSIGN_OR_RETURN(Schema schema, Schema::Decode(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t first_page, GetVarint64(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t index_root, GetVarint64(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t next_tid, GetVarint64(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t row_count, GetVarint64(&in));
    FM_ASSIGN_OR_RETURN(
        HeapFile heap,
        HeapFile::Open(pool_.get(), static_cast<PageId>(first_page)));
    BPlusTree tid_index =
        BPlusTree::Open(pool_.get(), static_cast<PageId>(index_root));
    auto table = std::unique_ptr<Table>(
        new Table(name, std::move(schema), std::move(heap),
                  std::move(tid_index), static_cast<Tid>(next_tid),
                  row_count));
    tables_.emplace(std::move(name), std::move(table));
  }

  FM_ASSIGN_OR_RETURN(const uint64_t num_indexes, GetVarint64(&in));
  for (uint64_t i = 0; i < num_indexes; ++i) {
    FM_ASSIGN_OR_RETURN(std::string name, GetString(&in));
    FM_ASSIGN_OR_RETURN(const uint64_t root, GetVarint64(&in));
    auto index = std::make_unique<BPlusTree>(
        BPlusTree::Open(pool_.get(), static_cast<PageId>(root)));
    indexes_.emplace(std::move(name), std::move(index));
  }
  return Status::OK();
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(
        StringPrintf("table %s exists", name.c_str()));
  }
  FM_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_.get()));
  FM_ASSIGN_OR_RETURN(BPlusTree tid_index, BPlusTree::Create(pool_.get()));
  auto table = std::unique_ptr<Table>(
      new Table(name, std::move(schema), std::move(heap),
                std::move(tid_index), /*next_tid=*/0, /*row_count=*/0));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StringPrintf("no table %s", name.c_str()));
  }
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound(StringPrintf("no table %s", name.c_str()));
  }
  return Status::OK();
}

Result<BPlusTree*> Database::CreateIndex(const std::string& name) {
  if (indexes_.count(name) > 0) {
    return Status::AlreadyExists(
        StringPrintf("index %s exists", name.c_str()));
  }
  FM_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool_.get()));
  auto index = std::make_unique<BPlusTree>(std::move(tree));
  BPlusTree* ptr = index.get();
  indexes_.emplace(name, std::move(index));
  return ptr;
}

Result<BPlusTree*> Database::GetIndex(const std::string& name) {
  const auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound(StringPrintf("no index %s", name.c_str()));
  }
  return it->second.get();
}

Status Database::DropIndex(const std::string& name) {
  if (indexes_.erase(name) == 0) {
    return Status::NotFound(StringPrintf("no index %s", name.c_str()));
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  FM_FAIL_POINT("db.checkpoint");
  FM_RETURN_IF_ERROR(SaveCatalog());
  return pool_->FlushAll();
}

}  // namespace fuzzymatch

// Pager: allocation and I/O of fixed-size pages.
//
// Two modes:
//  - file-backed: pages live at offset page_id * kPageSize in a single file
//    (POSIX pread/pwrite), persisting across Open() calls;
//  - in-memory: pages live on the heap (fast mode for tests and benches).
//
// The Pager knows nothing about page contents; caching and pinning are the
// BufferPool's job.

#ifndef FUZZYMATCH_STORAGE_PAGER_H_
#define FUZZYMATCH_STORAGE_PAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace fuzzymatch {

/// Owns the backing store (file or heap) for a set of pages.
class Pager {
 public:
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (creating if needed) a file-backed pager. The file size must be
  /// a multiple of kPageSize.
  static Result<std::unique_ptr<Pager>> OpenFile(const std::string& path);

  /// Creates an in-memory pager.
  static std::unique_ptr<Pager> OpenInMemory();

  /// Number of allocated pages.
  uint32_t page_count() const { return page_count_; }

  /// Allocates a new zero-filled page at the end of the store.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `id`.
  Status WritePage(PageId id, const char* buf);

  /// For file-backed pagers, fsyncs the file; no-op in memory mode.
  Status Sync();

  /// True if file-backed.
  bool is_file_backed() const { return fd_ >= 0; }

 private:
  Pager() = default;

  /// Writes without the page-bounds check (used while extending the file).
  Status WritePageAtUnchecked_(PageId id, const char* buf);

  int fd_ = -1;
  std::string path_;
  uint32_t page_count_ = 0;
  std::vector<std::unique_ptr<char[]>> mem_pages_;  // in-memory mode only
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_PAGER_H_

// Pager: allocation and I/O of fixed-size pages.
//
// Two modes:
//  - file-backed: pages live at offset page_id * kPageSize in a single file
//    (POSIX pread/pwrite), persisting across Open() calls;
//  - in-memory: pages live on the heap (fast mode for tests and benches).
//
// The Pager knows nothing about page contents; caching and pinning are the
// BufferPool's job.
//
// Thread safety: all operations may be called concurrently. Allocation
// takes a mutex; reads and writes of already-allocated pages run without
// it (pread/pwrite are positional, and in-memory page buffers never move
// once allocated). Concurrent accesses to the SAME page are the caller's
// problem — the BufferPool's latching already serializes them.

#ifndef FUZZYMATCH_STORAGE_PAGER_H_
#define FUZZYMATCH_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace fuzzymatch {

/// Owns the backing store (file or heap) for a set of pages.
class Pager {
 public:
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (creating if needed) a file-backed pager. The file size must be
  /// a multiple of kPageSize.
  static Result<std::unique_ptr<Pager>> OpenFile(const std::string& path);

  /// Creates an in-memory pager.
  static std::unique_ptr<Pager> OpenInMemory();

  /// Number of allocated pages.
  uint32_t page_count() const {
    return page_count_.load(std::memory_order_acquire);
  }

  /// Allocates a new zero-filled page at the end of the store.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `id`.
  Status WritePage(PageId id, const char* buf);

  /// Extends the store with zero pages until page `id` exists. Used by
  /// WAL replay, which may redo pages allocated after the last
  /// checkpoint (the crash cut the file short of them).
  Status EnsureCapacity(PageId id);

  /// For file-backed pagers, fsyncs the file; no-op in memory mode.
  Status Sync();

  /// True if file-backed.
  bool is_file_backed() const { return fd_ >= 0; }

 private:
  Pager() = default;

  /// Writes without the page-bounds check (used while extending the file).
  Status WritePageAtUnchecked_(PageId id, const char* buf);

  /// In-memory mode: resolves page `id` to its stable buffer under the
  /// allocation mutex.
  char* MemPageUnlocked_(PageId id);

  int fd_ = -1;
  std::string path_;
  std::mutex alloc_mu_;  // serializes AllocatePage (file extension /
                         // mem_pages_ growth)
  std::atomic<uint32_t> page_count_{0};
  std::vector<std::unique_ptr<char[]>> mem_pages_;  // in-memory mode only
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_PAGER_H_

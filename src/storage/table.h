// Table: a named relation = schema + heap file + tid primary index.
//
// Every row gets a dense tuple identifier (tid) at insert time; the paper
// assumes "tid is a key of R" and that R is indexed on tid for the
// candidate-verification fetches, which the tid B+-tree provides.

#ifndef FUZZYMATCH_STORAGE_TABLE_H_
#define FUZZYMATCH_STORAGE_TABLE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/schema.h"

namespace fuzzymatch {

/// Tuple identifier: dense, assigned in insertion order starting at 0.
using Tid = uint32_t;

/// A stored relation. Created/opened through Database.
///
/// Concurrency: Get/GetByRid/Scan are safe from concurrent threads once
/// loading is done (reads go through the BufferPool latch). Insert/
/// Update/Delete are exclusive — see the Database shared-read contract.
class Table {
 public:
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t row_count() const { return row_count_; }

  /// Appends a row; returns its assigned tid.
  Result<Tid> Insert(const Row& row);

  /// Where a row landed; rids let secondary indexes skip the tid index.
  struct InsertInfo {
    Tid tid;
    Rid rid;
  };

  /// Appends a row and reports its physical location.
  Result<InsertInfo> InsertWithLocation(const Row& row);

  /// Fetches a row by tid (one B+-tree probe + one heap read).
  Result<Row> Get(Tid tid) const;

  /// Fetches a row directly by rid (one heap read; rids come from
  /// InsertWithLocation or a secondary index).
  Result<Row> GetByRid(const Rid& rid) const;

  /// Replaces the row stored under `tid`. The record may relocate; any
  /// secondary index pointing at the old rid must be repointed to the
  /// returned one.
  Result<Rid> Update(Tid tid, const Row& row);

  /// Replaces the row at `rid` in place (keeping its tid); returns the
  /// new rid. Same secondary-index caveat as Update().
  Result<Rid> UpdateByRid(const Rid& rid, const Row& row);

  /// First half of a two-phase update: writes the new image and repoints
  /// the tid index, but leaves the old record at `rid` so callers can
  /// repoint their secondary indexes before EraseRid drops it. A failure
  /// between the two phases leaves at worst an unreferenced old image.
  Result<Rid> ReplaceByRid(const Rid& rid, const Row& row);

  /// Second half of a two-phase update: removes the superseded record.
  Status EraseRid(const Rid& rid);

  /// Removes the row stored under `tid`. Secondary index entries for it
  /// are the caller's responsibility.
  Status Delete(Tid tid);

  /// Full scan in storage order.
  class Scanner {
   public:
    /// Advances; false at end. On true fills `tid` and `row`.
    Result<bool> Next(Tid* tid, Row* row);

   private:
    friend class Table;
    explicit Scanner(HeapFile::Scanner inner) : inner_(std::move(inner)) {}
    HeapFile::Scanner inner_;
  };

  Scanner Scan() const { return Scanner(heap_.Scan()); }

 private:
  friend class Database;
  Table(std::string name, Schema schema, HeapFile heap, BPlusTree tid_index,
        Tid next_tid, uint64_t row_count)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        heap_(std::move(heap)),
        tid_index_(std::move(tid_index)),
        next_tid_(next_tid),
        row_count_(row_count) {}

  std::string name_;
  Schema schema_;
  HeapFile heap_;
  BPlusTree tid_index_;
  Tid next_tid_;
  uint64_t row_count_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_TABLE_H_

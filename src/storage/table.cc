#include "storage/table.h"

#include "common/string_util.h"
#include "common/varint.h"
#include "fault/failpoint.h"
#include "storage/key_codec.h"

namespace fuzzymatch {

namespace {

// Heap record layout: varint tid, then the row payload.
std::string EncodeHeapRecord(Tid tid, const Row& row) {
  std::string out;
  PutVarint64(&out, tid);
  out += RowCodec::Encode(row);
  return out;
}

Result<std::pair<Tid, Row>> DecodeHeapRecord(std::string_view payload) {
  FM_ASSIGN_OR_RETURN(const uint64_t tid, GetVarint64(&payload));
  FM_ASSIGN_OR_RETURN(Row row, RowCodec::Decode(payload));
  return std::make_pair(static_cast<Tid>(tid), std::move(row));
}

std::string TidKey(Tid tid) {
  KeyEncoder enc;
  enc.AppendU32(tid);
  return enc.Take();
}

}  // namespace

Result<Tid> Table::Insert(const Row& row) {
  FM_ASSIGN_OR_RETURN(const InsertInfo info, InsertWithLocation(row));
  return info.tid;
}

Result<Table::InsertInfo> Table::InsertWithLocation(const Row& row) {
  FM_FAIL_POINT("table.insert");
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("row has %zu fields, schema %s has %zu columns",
                     row.size(), name_.c_str(), schema_.num_columns()));
  }
  const Tid tid = next_tid_++;
  FM_ASSIGN_OR_RETURN(const Rid rid, heap_.Insert(EncodeHeapRecord(tid, row)));
  FM_RETURN_IF_ERROR(tid_index_.Insert(TidKey(tid), rid.Encode()));
  ++row_count_;
  return InsertInfo{tid, rid};
}

Result<Row> Table::GetByRid(const Rid& rid) const {
  FM_ASSIGN_OR_RETURN(const std::string payload, heap_.Get(rid));
  FM_ASSIGN_OR_RETURN(auto decoded, DecodeHeapRecord(payload));
  return std::move(decoded.second);
}

Result<Rid> Table::Update(Tid tid, const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("row has %zu fields, schema %s has %zu columns",
                     row.size(), name_.c_str(), schema_.num_columns()));
  }
  FM_FAIL_POINT("table.update");
  FM_ASSIGN_OR_RETURN(const std::string rid_bytes,
                      tid_index_.Get(TidKey(tid)));
  FM_ASSIGN_OR_RETURN(const Rid old_rid, Rid::Decode(rid_bytes));
  // Insert-new / repoint-index / delete-old, in that order: a write that
  // fails partway leaves the tid index pointing at a complete record (the
  // old one, or the new one with the old left as an unindexed orphan)
  // instead of dangling at a deleted slot.
  FM_ASSIGN_OR_RETURN(const Rid new_rid,
                      heap_.Insert(EncodeHeapRecord(tid, row)));
  FM_RETURN_IF_ERROR(tid_index_.Put(TidKey(tid), new_rid.Encode()));
  FM_RETURN_IF_ERROR(heap_.Delete(old_rid));
  return new_rid;
}

Result<Rid> Table::UpdateByRid(const Rid& rid, const Row& row) {
  FM_ASSIGN_OR_RETURN(const Rid new_rid, ReplaceByRid(rid, row));
  FM_RETURN_IF_ERROR(EraseRid(rid));
  return new_rid;
}

Result<Rid> Table::ReplaceByRid(const Rid& rid, const Row& row) {
  FM_FAIL_POINT("table.update");
  FM_ASSIGN_OR_RETURN(const std::string payload, heap_.Get(rid));
  FM_ASSIGN_OR_RETURN(auto decoded, DecodeHeapRecord(payload));
  const Tid tid = decoded.first;
  // Same ordering rationale as Update above.
  FM_ASSIGN_OR_RETURN(const Rid new_rid,
                      heap_.Insert(EncodeHeapRecord(tid, row)));
  FM_RETURN_IF_ERROR(tid_index_.Put(TidKey(tid), new_rid.Encode()));
  return new_rid;
}

Status Table::EraseRid(const Rid& rid) { return heap_.Delete(rid); }

Status Table::Delete(Tid tid) {
  FM_ASSIGN_OR_RETURN(const std::string rid_bytes,
                      tid_index_.Get(TidKey(tid)));
  FM_ASSIGN_OR_RETURN(const Rid rid, Rid::Decode(rid_bytes));
  FM_RETURN_IF_ERROR(heap_.Delete(rid));
  FM_RETURN_IF_ERROR(tid_index_.Delete(TidKey(tid)));
  --row_count_;
  return Status::OK();
}

Result<Row> Table::Get(Tid tid) const {
  FM_ASSIGN_OR_RETURN(const std::string rid_bytes,
                      tid_index_.Get(TidKey(tid)));
  FM_ASSIGN_OR_RETURN(const Rid rid, Rid::Decode(rid_bytes));
  FM_ASSIGN_OR_RETURN(const std::string payload, heap_.Get(rid));
  FM_ASSIGN_OR_RETURN(auto decoded, DecodeHeapRecord(payload));
  if (decoded.first != tid) {
    return Status::Corruption(
        StringPrintf("tid index pointed %u at record with tid %u", tid,
                     decoded.first));
  }
  return std::move(decoded.second);
}

Result<bool> Table::Scanner::Next(Tid* tid, Row* row) {
  Rid rid;
  std::string payload;
  FM_ASSIGN_OR_RETURN(const bool more, inner_.Next(&rid, &payload));
  if (!more) {
    return false;
  }
  FM_ASSIGN_OR_RETURN(auto decoded, DecodeHeapRecord(payload));
  *tid = decoded.first;
  *row = std::move(decoded.second);
  return true;
}

}  // namespace fuzzymatch

#include "storage/btree.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {

namespace {

obs::Counter& LookupsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("btree.lookups");
  return *c;
}

// Node fetches during root-to-leaf descents (internal nodes + the leaf);
// node_reads / lookups is the effective probe depth.
obs::Counter& NodeReadsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("btree.node_reads");
  return *c;
}

}  // namespace

namespace btree_internal {

std::string EncodeLeafEntry(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(2 + key.size() + value.size());
  const uint16_t klen = static_cast<uint16_t>(key.size());
  out.append(reinterpret_cast<const char*>(&klen), 2);
  out.append(key);
  out.append(value);
  return out;
}

std::string_view LeafKey(std::string_view record) {
  uint16_t klen;
  std::memcpy(&klen, record.data(), 2);
  return record.substr(2, klen);
}

std::string_view LeafValue(std::string_view record) {
  uint16_t klen;
  std::memcpy(&klen, record.data(), 2);
  return record.substr(2 + klen);
}

std::string EncodeInternalEntry(std::string_view key, PageId child) {
  std::string out;
  out.reserve(2 + key.size() + 4);
  const uint16_t klen = static_cast<uint16_t>(key.size());
  out.append(reinterpret_cast<const char*>(&klen), 2);
  out.append(key);
  out.append(reinterpret_cast<const char*>(&child), 4);
  return out;
}

std::string_view InternalKey(std::string_view record) {
  uint16_t klen;
  std::memcpy(&klen, record.data(), 2);
  return record.substr(2, klen);
}

PageId InternalChild(std::string_view record) {
  uint16_t klen;
  std::memcpy(&klen, record.data(), 2);
  PageId child;
  std::memcpy(&child, record.data() + 2 + klen, 4);
  return child;
}

// The leftmost-child pointer uses the reserved header bytes [12, 16).
constexpr size_t kLeftmostOff = 12;

PageId GetLeftmostChild(const Page& page) {
  PageId id;
  std::memcpy(&id, page.data() + kLeftmostOff, 4);
  return id;
}

void SetLeftmostChild(Page& page, PageId child) {
  std::memcpy(page.data() + kLeftmostOff, &child, 4);
}

uint16_t LowerBound(const Page& page, std::string_view key, bool is_leaf) {
  uint16_t lo = 0;
  uint16_t hi = page.slot_count();
  while (lo < hi) {
    const uint16_t mid = static_cast<uint16_t>(lo + (hi - lo) / 2);
    const auto rec = page.Get(mid);
    FM_CHECK(rec.has_value());
    const std::string_view k = is_leaf ? LeafKey(*rec) : InternalKey(*rec);
    if (k < key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace btree_internal

using namespace btree_internal;  // NOLINT(build/namespaces) - impl file

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool->New());
  guard.page().Init(PageType::kBTreeLeaf);
  guard.page().set_next_page(kInvalidPageId);
  guard.MarkDirty();
  return BPlusTree(pool, guard.page_id());
}

Result<PageId> BPlusTree::FindLeaf(std::string_view key) const {
  PageId node = root_;
  for (;;) {
    NodeReadsCounter().Increment();
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(node));
    const Page page = guard.page();
    if (page.type() == PageType::kBTreeLeaf) {
      return node;
    }
    if (page.type() != PageType::kBTreeInternal) {
      return Status::Corruption(
          StringPrintf("page %u is not a btree node", node));
    }
    // Child covering `key`: the last entry with separator <= key, or the
    // leftmost child if key precedes all separators.
    const uint16_t idx = LowerBound(page, key, /*is_leaf=*/false);
    // idx = first entry with sep >= key.
    if (idx < page.slot_count()) {
      const auto rec = page.Get(idx);
      if (InternalKey(*rec) == key) {
        node = InternalChild(*rec);
        continue;
      }
    }
    if (idx == 0) {
      node = GetLeftmostChild(page);
    } else {
      node = InternalChild(*page.Get(static_cast<uint16_t>(idx - 1)));
    }
  }
}

Result<std::string> BPlusTree::Get(std::string_view key) const {
  FM_TRACE_SPAN("btree.lookup");
  LookupsCounter().Increment();
  FM_ASSIGN_OR_RETURN(const PageId leaf, FindLeaf(key));
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(leaf));
  const Page page = guard.page();
  const uint16_t idx = LowerBound(page, key, /*is_leaf=*/true);
  if (idx < page.slot_count()) {
    const auto rec = page.Get(idx);
    if (LeafKey(*rec) == key) {
      return std::string(LeafValue(*rec));
    }
  }
  return Status::NotFound("key not in btree");
}

Status BPlusTree::Insert(std::string_view key, std::string_view value) {
  return PutImpl(key, value, /*allow_overwrite=*/false);
}

Status BPlusTree::Put(std::string_view key, std::string_view value) {
  return PutImpl(key, value, /*allow_overwrite=*/true);
}

Status BPlusTree::PutImpl(std::string_view key, std::string_view value,
                          bool allow_overwrite) {
  FM_FAIL_POINT("btree.put");
  if (key.size() + value.size() > kMaxEntrySize) {
    return Status::InvalidArgument(
        StringPrintf("btree entry too large (%zu bytes, max %zu)",
                     key.size() + value.size(), kMaxEntrySize));
  }
  if (key.empty()) {
    return Status::InvalidArgument("btree keys must be non-empty");
  }
  std::optional<SplitResult> split;
  FM_RETURN_IF_ERROR(InsertInto(root_, key, value, allow_overwrite, &split));
  if (split) {
    // Grow a new root above the old one.
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->New());
    Page page = guard.page();
    page.Init(PageType::kBTreeInternal);
    SetLeftmostChild(page, root_);
    const std::string entry =
        EncodeInternalEntry(split->separator, split->right);
    FM_CHECK(page.InsertAt(0, entry));
    guard.MarkDirty();
    root_ = guard.page_id();
  }
  return Status::OK();
}

Status BPlusTree::InsertInto(PageId node, std::string_view key,
                             std::string_view value, bool allow_overwrite,
                             std::optional<SplitResult>* split) {
  split->reset();
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(node));
  Page page = guard.page();

  if (page.type() == PageType::kBTreeLeaf) {
    uint16_t idx = LowerBound(page, key, /*is_leaf=*/true);
    if (idx < page.slot_count() && LeafKey(*page.Get(idx)) == key) {
      if (!allow_overwrite) {
        return Status::AlreadyExists("duplicate btree key");
      }
      page.RemoveAt(idx);
      // fall through to reinsert at the same position
    }
    const std::string entry = EncodeLeafEntry(key, value);
    if (!page.InsertAt(idx, entry)) {
      page.Compact();
      if (!page.InsertAt(idx, entry)) {
        FM_RETURN_IF_ERROR(SplitLeaf(guard, split));
        // Retry in the correct half.
        Page left = guard.page();
        if (key >= (*split)->separator) {
          FM_ASSIGN_OR_RETURN(PageGuard right_guard,
                              pool_->Fetch((*split)->right));
          Page right = right_guard.page();
          const uint16_t ridx = LowerBound(right, key, /*is_leaf=*/true);
          FM_CHECK(right.InsertAt(ridx, entry));
          right_guard.MarkDirty();
        } else {
          const uint16_t lidx = LowerBound(left, key, /*is_leaf=*/true);
          FM_CHECK(left.InsertAt(lidx, entry));
        }
      }
    }
    guard.MarkDirty();
    return Status::OK();
  }

  if (page.type() != PageType::kBTreeInternal) {
    return Status::Corruption(
        StringPrintf("page %u is not a btree node", node));
  }

  // Locate child, release nothing (single-threaded; recursion is fine).
  uint16_t idx = LowerBound(page, key, /*is_leaf=*/false);
  PageId child;
  if (idx < page.slot_count() && InternalKey(*page.Get(idx)) == key) {
    child = InternalChild(*page.Get(idx));
  } else if (idx == 0) {
    child = GetLeftmostChild(page);
  } else {
    child = InternalChild(*page.Get(static_cast<uint16_t>(idx - 1)));
  }

  std::optional<SplitResult> child_split;
  FM_RETURN_IF_ERROR(
      InsertInto(child, key, value, allow_overwrite, &child_split));
  if (!child_split) {
    return Status::OK();
  }

  // Insert the promoted separator into this node.
  const std::string entry =
      EncodeInternalEntry(child_split->separator, child_split->right);
  uint16_t at = LowerBound(page, child_split->separator, /*is_leaf=*/false);
  if (!page.InsertAt(at, entry)) {
    page.Compact();
    if (!page.InsertAt(at, entry)) {
      FM_RETURN_IF_ERROR(SplitInternal(guard, split));
      // Insert into the proper half.
      if (child_split->separator >= (*split)->separator) {
        FM_ASSIGN_OR_RETURN(PageGuard right_guard,
                            pool_->Fetch((*split)->right));
        Page right = right_guard.page();
        const uint16_t ridx =
            LowerBound(right, child_split->separator, /*is_leaf=*/false);
        FM_CHECK(right.InsertAt(ridx, entry));
        right_guard.MarkDirty();
      } else {
        Page left = guard.page();
        const uint16_t lidx =
            LowerBound(left, child_split->separator, /*is_leaf=*/false);
        FM_CHECK(left.InsertAt(lidx, entry));
      }
    }
  }
  guard.MarkDirty();
  return Status::OK();
}

Status BPlusTree::SplitLeaf(PageGuard& guard,
                            std::optional<SplitResult>* split) {
  FM_FAIL_POINT("btree.split_leaf");
  Page left = guard.page();
  const uint16_t count = left.slot_count();
  FM_CHECK_GE(count, uint16_t{2});
  const uint16_t mid = static_cast<uint16_t>(count / 2);

  FM_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->New());
  Page right = right_guard.page();
  right.Init(PageType::kBTreeLeaf);

  // Move entries [mid, count) to the new right sibling.
  for (uint16_t i = mid; i < count; ++i) {
    const auto rec = left.Get(i);
    FM_CHECK(rec.has_value());
    FM_CHECK(right.Insert(*rec).has_value());
  }
  for (uint16_t i = count; i > mid; --i) {
    left.RemoveAt(static_cast<uint16_t>(i - 1));
  }
  left.Compact();

  right.set_next_page(left.next_page());
  left.set_next_page(right_guard.page_id());

  guard.MarkDirty();
  right_guard.MarkDirty();

  SplitResult result;
  result.separator = std::string(LeafKey(*right.Get(0)));
  result.right = right_guard.page_id();
  *split = std::move(result);
  return Status::OK();
}

Status BPlusTree::SplitInternal(PageGuard& guard,
                                std::optional<SplitResult>* split) {
  FM_FAIL_POINT("btree.split_internal");
  Page left = guard.page();
  const uint16_t count = left.slot_count();
  FM_CHECK_GE(count, uint16_t{3});
  const uint16_t mid = static_cast<uint16_t>(count / 2);

  FM_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->New());
  Page right = right_guard.page();
  right.Init(PageType::kBTreeInternal);

  // The mid entry's key is promoted; its child becomes the right node's
  // leftmost child. Entries (mid, count) move to the right node.
  const auto mid_rec = left.Get(mid);
  FM_CHECK(mid_rec.has_value());
  SplitResult result;
  result.separator = std::string(InternalKey(*mid_rec));
  SetLeftmostChild(right, InternalChild(*mid_rec));

  for (uint16_t i = static_cast<uint16_t>(mid + 1); i < count; ++i) {
    const auto rec = left.Get(i);
    FM_CHECK(rec.has_value());
    FM_CHECK(right.Insert(*rec).has_value());
  }
  for (uint16_t i = count; i > mid; --i) {
    left.RemoveAt(static_cast<uint16_t>(i - 1));
  }
  left.Compact();

  guard.MarkDirty();
  right_guard.MarkDirty();

  result.right = right_guard.page_id();
  *split = std::move(result);
  return Status::OK();
}

Status BPlusTree::Delete(std::string_view key) {
  FM_FAIL_POINT("btree.delete");
  FM_ASSIGN_OR_RETURN(const PageId leaf, FindLeaf(key));
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(leaf));
  Page page = guard.page();
  const uint16_t idx = LowerBound(page, key, /*is_leaf=*/true);
  if (idx >= page.slot_count() || LeafKey(*page.Get(idx)) != key) {
    return Status::NotFound("key not in btree");
  }
  page.RemoveAt(idx);
  guard.MarkDirty();
  return Status::OK();
}

Result<PageId> BPlusTree::LeftmostLeaf() const {
  PageId node = root_;
  for (;;) {
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(node));
    const Page page = guard.page();
    if (page.type() == PageType::kBTreeLeaf) {
      return node;
    }
    node = GetLeftmostChild(page);
  }
}

Result<uint64_t> BPlusTree::Count() const {
  uint64_t n = 0;
  FM_ASSIGN_OR_RETURN(PageId leaf, LeftmostLeaf());
  while (leaf != kInvalidPageId) {
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(leaf));
    n += guard.page().slot_count();
    leaf = guard.page().next_page();
  }
  return n;
}

Result<int> BPlusTree::Height() const {
  int h = 1;
  PageId node = root_;
  for (;;) {
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(node));
    const Page page = guard.page();
    if (page.type() == PageType::kBTreeLeaf) {
      return h;
    }
    node = GetLeftmostChild(page);
    ++h;
  }
}

Status BPlusTree::Iterator::Seek(std::string_view key) {
  FM_ASSIGN_OR_RETURN(leaf_, tree_->FindLeaf(key));
  FM_ASSIGN_OR_RETURN(PageGuard guard, tree_->pool_->Fetch(leaf_));
  pos_ = LowerBound(guard.page(), key, /*is_leaf=*/true);
  valid_ = true;
  FM_RETURN_IF_ERROR(SkipEmptyLeaves());
  return LoadEntry();
}

Status BPlusTree::Iterator::SeekToFirst() {
  FM_ASSIGN_OR_RETURN(leaf_, tree_->LeftmostLeaf());
  pos_ = 0;
  valid_ = true;
  FM_RETURN_IF_ERROR(SkipEmptyLeaves());
  return LoadEntry();
}

Status BPlusTree::Iterator::SkipEmptyLeaves() {
  while (leaf_ != kInvalidPageId) {
    FM_ASSIGN_OR_RETURN(PageGuard guard, tree_->pool_->Fetch(leaf_));
    if (pos_ < guard.page().slot_count()) {
      return Status::OK();
    }
    leaf_ = guard.page().next_page();
    pos_ = 0;
  }
  valid_ = false;
  return Status::OK();
}

Status BPlusTree::Iterator::LoadEntry() {
  if (!valid_) {
    return Status::OK();
  }
  FM_ASSIGN_OR_RETURN(PageGuard guard, tree_->pool_->Fetch(leaf_));
  const auto rec = guard.page().Get(pos_);
  if (!rec) {
    return Status::Corruption("btree iterator out of bounds");
  }
  key_.assign(LeafKey(*rec));
  value_.assign(LeafValue(*rec));
  return Status::OK();
}

Status BPlusTree::Iterator::Next() {
  FM_CHECK(valid_);
  ++pos_;
  FM_RETURN_IF_ERROR(SkipEmptyLeaves());
  return LoadEntry();
}

}  // namespace fuzzymatch

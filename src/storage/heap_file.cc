#include "storage/heap_file.h"

#include <cstring>

#include "common/string_util.h"
#include "fault/failpoint.h"

namespace fuzzymatch {

namespace {

// Records at or above this size go to overflow pages. Leaves room for
// several records per page in the common case.
constexpr size_t kMaxInlineRecord = kPageSize / 4;

// Stub layout: 1-byte marker, u32 total length, u32 overflow head page.
constexpr char kStubMarker = '\x01';
constexpr char kInlineMarker = '\x00';
constexpr size_t kStubSize = 1 + 4 + 4;

// Overflow page payload layout: the full page after the standard header is
// raw bytes; the number of bytes used in this page is implied by total_len.
constexpr size_t kOverflowPayload = kPageSize - Page::kHeaderSize;

}  // namespace

std::string Rid::Encode() const {
  std::string out(kEncodedSize, '\0');
  std::memcpy(out.data(), &page_id, 4);
  std::memcpy(out.data() + 4, &slot, 2);
  return out;
}

Result<Rid> Rid::Decode(std::string_view bytes) {
  if (bytes.size() != kEncodedSize) {
    return Status::Corruption("bad rid encoding length");
  }
  Rid rid;
  std::memcpy(&rid.page_id, bytes.data(), 4);
  std::memcpy(&rid.slot, bytes.data() + 4, 2);
  return rid;
}

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool->New());
  guard.page().Init(PageType::kHeap);
  guard.MarkDirty();
  return HeapFile(pool, guard.page_id(), guard.page_id());
}

Result<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page) {
  PageId last = first_page;
  for (;;) {
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(last));
    const PageId next = guard.page().next_page();
    if (next == kInvalidPageId) break;
    last = next;
  }
  return HeapFile(pool, first_page, last);
}

Result<PageId> HeapFile::WriteOverflow(std::string_view record) {
  PageId head = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t off = 0;
  while (off < record.size() || head == kInvalidPageId) {
    FM_FAIL_POINT("heap.write_overflow");
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->New());
    guard.page().Init(PageType::kMeta);
    const size_t take = std::min(kOverflowPayload, record.size() - off);
    std::memcpy(guard.data() + Page::kHeaderSize, record.data() + off, take);
    guard.MarkDirty();
    if (head == kInvalidPageId) {
      head = guard.page_id();
    } else {
      FM_ASSIGN_OR_RETURN(PageGuard prev_guard, pool_->Fetch(prev));
      prev_guard.page().set_next_page(guard.page_id());
      prev_guard.MarkDirty();
    }
    prev = guard.page_id();
    off += take;
  }
  return head;
}

Result<std::string> HeapFile::ReadOverflow(PageId head,
                                           uint32_t total_len) const {
  std::string out;
  out.reserve(total_len);
  PageId page = head;
  while (out.size() < total_len) {
    if (page == kInvalidPageId) {
      return Status::Corruption("overflow chain ended early");
    }
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    const size_t take =
        std::min(kOverflowPayload, static_cast<size_t>(total_len) - out.size());
    out.append(guard.data() + Page::kHeaderSize, take);
    page = guard.page().next_page();
  }
  return out;
}

Result<Rid> HeapFile::Insert(std::string_view record) {
  FM_FAIL_POINT("heap.insert");
  std::string stub;
  std::string_view to_store = record;
  if (record.size() >= kMaxInlineRecord) {
    FM_ASSIGN_OR_RETURN(const PageId head, WriteOverflow(record));
    stub.resize(kStubSize);
    stub[0] = kStubMarker;
    const uint32_t len = static_cast<uint32_t>(record.size());
    std::memcpy(stub.data() + 1, &len, 4);
    std::memcpy(stub.data() + 5, &head, 4);
    to_store = stub;
  } else {
    stub.reserve(record.size() + 1);
    stub.push_back(kInlineMarker);
    stub.append(record);
    to_store = stub;
  }

  {
    FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(last_page_));
    Page page = guard.page();
    if (auto slot = page.Insert(to_store)) {
      guard.MarkDirty();
      return Rid{guard.page_id(), *slot};
    }
  }
  // Last page full: chain a new one.
  FM_ASSIGN_OR_RETURN(PageGuard fresh, pool_->New());
  fresh.page().Init(PageType::kHeap);
  fresh.MarkDirty();
  {
    FM_ASSIGN_OR_RETURN(PageGuard old_last, pool_->Fetch(last_page_));
    old_last.page().set_next_page(fresh.page_id());
    old_last.MarkDirty();
  }
  last_page_ = fresh.page_id();
  Page page = fresh.page();
  auto slot = page.Insert(to_store);
  if (!slot) {
    return Status::Internal("record does not fit in an empty page");
  }
  return Rid{fresh.page_id(), *slot};
}

Result<std::string> HeapFile::Get(const Rid& rid) const {
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page_id));
  const Page page = guard.page();
  const auto rec = page.Get(rid.slot);
  if (!rec) {
    return Status::NotFound(StringPrintf("no record at rid %u/%u",
                                         rid.page_id, rid.slot));
  }
  if (rec->empty()) {
    return Status::Corruption("empty heap record");
  }
  if ((*rec)[0] == kInlineMarker) {
    return std::string(rec->substr(1));
  }
  if (rec->size() != kStubSize) {
    return Status::Corruption("bad overflow stub size");
  }
  uint32_t total_len;
  PageId head;
  std::memcpy(&total_len, rec->data() + 1, 4);
  std::memcpy(&head, rec->data() + 5, 4);
  return ReadOverflow(head, total_len);
}

Status HeapFile::Delete(const Rid& rid) {
  FM_FAIL_POINT("heap.delete");
  FM_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page_id));
  Page page = guard.page();
  if (!page.Delete(rid.slot)) {
    return Status::NotFound(StringPrintf("no record at rid %u/%u",
                                         rid.page_id, rid.slot));
  }
  guard.MarkDirty();
  return Status::OK();
}

Result<bool> HeapFile::Scanner::Next(Rid* rid, std::string* record) {
  while (page_ != kInvalidPageId) {
    FM_ASSIGN_OR_RETURN(PageGuard guard, file_->pool_->Fetch(page_));
    const Page page = guard.page();
    while (slot_ < page.slot_count()) {
      const SlotId s = slot_++;
      if (page.Get(s).has_value()) {
        *rid = Rid{page_, s};
        FM_ASSIGN_OR_RETURN(*record, file_->Get(*rid));
        return true;
      }
    }
    page_ = page.next_page();
    slot_ = 0;
  }
  return false;
}

}  // namespace fuzzymatch

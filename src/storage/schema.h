// Relational schemas and the row wire format.
//
// All attributes are nullable strings, matching the paper's setting ("we
// assume that each Ai is a string-valued attribute, e.g. of type varchar").
// The tid key attribute is kept separately by Table as a dense uint32.

#ifndef FUZZYMATCH_STORAGE_SCHEMA_H_
#define FUZZYMATCH_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace fuzzymatch {

/// A tuple value: one optional string per schema column. nullopt == NULL.
using Row = std::vector<std::optional<std::string>>;

/// Ordered list of named string columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> column_names);

  size_t num_columns() const { return names_.size(); }
  const std::string& column_name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& column_names() const { return names_; }

  /// Index of the named column, or -1.
  int ColumnIndex(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return names_ == other.names_;
  }

  /// Serialization for the catalog.
  void EncodeTo(std::string* out) const;
  static Result<Schema> Decode(std::string_view* in);

 private:
  std::vector<std::string> names_;
};

/// Encodes/decodes rows to the byte payloads stored in heap files.
class RowCodec {
 public:
  /// Wire format: varint field count; per field, varint 0 for NULL or
  /// varint(len+1) followed by the bytes.
  static std::string Encode(const Row& row);
  static Result<Row> Decode(std::string_view payload);
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_SCHEMA_H_

// Write-ahead log under the pager: the durability substrate for online
// maintenance (IndexTuple/UnindexTuple and their catalog side effects).
//
// The log is a single append-only file next to the database file
// (`<db>.wal`). Records are full page images framed with a CRC and
// stamped with monotonically increasing LSNs; a transaction becomes
// durable when its page images plus one commit record reach the platter.
// Group commit batches concurrent committers behind a single fsync: the
// first committer to find no flush in flight becomes the leader, swaps
// the append buffer out, writes and fsyncs it while the lock is dropped,
// and wakes every follower whose commit LSN the flush covered.
//
// Two record flavors beyond commit:
//  - page image (redo): the after-image of a page dirtied by a committed
//    maintenance transaction. Applied unconditionally during replay — a
//    torn page in the main file can carry a fresh header LSN over a stale
//    tail, so the header LSN is observability, not a redo filter.
//  - undo image: the before-image of a transaction-dirty page that the
//    buffer pool must steal (evict to the main file) before its
//    transaction commits. Replay restores the before-image unless a later
//    committed after-image supersedes it, so an uncommitted steal can
//    never surface after a crash.
//
// Identity guard: the log header carries the database id and the
// checkpoint LSN it was truncated at. Replay applies the log only when
// both match the catalog — a stale `.wal` next to a restored database
// file copy is discarded instead of replayed onto the wrong history.
//
// Replay never mutates the log or the log file, so a crash during
// recovery (see the `wal.replay` failpoint) re-runs it from scratch with
// a byte-identical outcome.

#ifndef FUZZYMATCH_STORAGE_WAL_H_
#define FUZZYMATCH_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace fuzzymatch {

/// When the log fsyncs (the `--wal-fsync` server flag).
enum class WalFsyncMode : uint8_t {
  /// Every flush fsyncs and commits never share one (group window 0).
  kAlways = 0,
  /// Every flush fsyncs; the leader waits a short window first so
  /// concurrent committers share the fsync. The default.
  kGroup = 1,
  /// Writes without fsync — commits can be lost to an OS crash (not a
  /// process crash). For benchmarks and bulk loads only.
  kNever = 2,
};

/// Parses "always" | "group" | "never".
Result<WalFsyncMode> ParseWalFsyncMode(std::string_view s);
std::string_view WalFsyncModeName(WalFsyncMode mode);

struct WalOptions {
  WalFsyncMode fsync_mode = WalFsyncMode::kGroup;
  /// Accumulation window the group-commit leader waits before flushing,
  /// in microseconds. Only meaningful in kGroup mode.
  uint32_t group_window_us = 100;
};

/// One database's write-ahead log. Thread-safe: any number of threads may
/// commit concurrently; group commit serializes the physical I/O.
class Wal {
 public:
  struct ReplayStats {
    /// A log file with a well-formed header existed.
    bool log_present = false;
    /// The header matched the catalog identity (db id + checkpoint LSN);
    /// false means the log was ignored as stale.
    bool identity_match = false;
    uint64_t records_scanned = 0;
    uint64_t commits_applied = 0;
    uint64_t pages_applied = 0;
    uint64_t undo_applied = 0;
    /// Bytes discarded at the tail (torn final write).
    uint64_t torn_bytes = 0;
    /// First unused LSN after the applied prefix; 0 when nothing applied.
    uint64_t next_lsn = 0;
    double seconds = 0.0;
  };

  /// Redoes the committed prefix of the log at `path` onto `pager`, then
  /// restores before-images of uncommitted steals. Applies nothing unless
  /// the header matches (`db_id`, `checkpoint_lsn`). Missing file is not
  /// an error. The caller must Sync() the pager before truncating the log.
  static Result<ReplayStats> Replay(const std::string& path, uint64_t db_id,
                                    uint64_t checkpoint_lsn, Pager* pager);

  /// Opens the log for writing, resetting it to an empty log that starts
  /// at `start_lsn`. Any previous content must already have been consumed
  /// by Replay() and made durable in the main file.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           uint64_t db_id, uint64_t start_lsn,
                                           WalOptions options);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Commits one maintenance transaction: stamps a fresh LSN into each
  /// image's page header, appends the images plus a commit record, and
  /// blocks until the batch is durable (per the fsync mode). `pages`
  /// pairs a page id with its mutable kPageSize after-image. Returns the
  /// commit LSN.
  Result<uint64_t> CommitPages(
      const std::vector<std::pair<PageId, char*>>& pages);

  /// Appends a before-image record and blocks until it is durable. Must
  /// be called before a transaction-dirty page is written to the main
  /// file ahead of its commit (buffer-pool steal).
  Status AppendUndo(PageId id, const char* image);

  /// Final group commit: flushes everything appended and fsyncs
  /// regardless of the fsync mode. The graceful-shutdown drain.
  Status Sync();

  /// Resets the log to empty at `start_lsn` (checkpoint: the main file
  /// now covers everything the log held). The caller must have no commit
  /// in flight.
  Status Truncate(uint64_t start_lsn);

  uint64_t next_lsn() const;
  uint64_t flushed_lsn() const;
  const std::string& path() const { return path_; }

  /// On-disk framing constants, shared with tests.
  static constexpr uint32_t kMagic = 0x4c574d46;  // "FMWL"
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kHeaderSize = 24;  // magic, version, db_id, lsn
  static constexpr uint8_t kRecPageImage = 1;
  static constexpr uint8_t kRecUndoImage = 2;
  static constexpr uint8_t kRecCommit = 3;

 private:
  Wal() = default;

  /// Appends one framed record to the in-memory buffer. Caller holds mu_.
  void AppendRecordLocked_(uint8_t type, uint64_t lsn, PageId page_id,
                           const char* image);

  /// Blocks until `lsn` is durable, becoming the flush leader when no
  /// flush is in flight. Caller holds `lock`.
  Status WaitDurable_(std::unique_lock<std::mutex>& lock, uint64_t lsn,
                      bool force_fsync);

  /// The physical write+fsync of `data` at `offset`. No lock held.
  Status WriteAndSync_(const std::string& data, uint64_t offset,
                       bool do_fsync);

  int fd_ = -1;
  std::string path_;
  uint64_t db_id_ = 0;
  WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string buf_;             // appended, not yet flushed
  uint64_t next_lsn_ = 1;       // next LSN to assign
  uint64_t appended_lsn_ = 0;   // last LSN appended to buf_ (or flushed)
  uint64_t flushed_lsn_ = 0;    // last LSN durable on the platter
  uint64_t file_size_ = 0;      // logical end of the log file
  size_t pending_commits_ = 0;  // commit records sitting in buf_
  bool flushing_ = false;       // a leader is writing outside the lock
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_WAL_H_

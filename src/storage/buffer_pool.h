// BufferPool: a fixed-capacity LRU cache of page frames over a Pager.
//
// Callers access pages through RAII PageGuards that pin the frame for the
// guard's lifetime.
//
// Thread safety (the shared-read contract): all public operations are
// safe to call from multiple threads concurrently. One internal mutex
// guards the frame table, the LRU list, pin counts, and the page->frame
// map; page *contents* are read through PageGuards without any lock — a
// pinned frame can neither be evicted nor re-pointed at another page, and
// the frame's byte buffer is allocated once and never moves. This is
// exactly what the fuzzy-match serving workload needs: the reference
// relation and the ETI are immutable after build, so queries are pure
// readers and never conflict on page bytes. Writers (index build,
// incremental ETI maintenance) are NOT internally serialized against each
// other or against readers of the pages they mutate; run them exclusively
// (build before serving starts, or behind an external write lock).
//
// The critical section covers pager I/O on a miss, so concurrent misses
// serialize. With a pool sized to the working set (the serving setup)
// misses vanish after warmup and the lock hold time is a hash lookup
// plus a list splice.

#ifndef FUZZYMATCH_STORAGE_BUFFER_POOL_H_
#define FUZZYMATCH_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace fuzzymatch {

class BufferPool;
class Wal;

/// Pins one page frame while alive; movable, not copyable. A PageGuard
/// must stay on the thread that created it or be handed off with external
/// synchronization (it is a capability, not a synchronized object).
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  /// True if this guard holds a page.
  bool valid() const { return pool_ != nullptr; }

  /// Id of the pinned page.
  PageId page_id() const { return page_id_; }

  /// Typed view over the pinned frame.
  Page page();
  const Page page() const;

  /// Raw frame bytes.
  char* data();

  /// Marks the frame dirty so it is written back before eviction.
  void MarkDirty();

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame, PageId page_id)
      : pool_(pool), frame_(frame), page_id_(page_id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

/// LRU page cache. Evicts only unpinned frames; dirty frames are written
/// back on eviction and on FlushAll(). Safe for concurrent use; see the
/// file comment for the shared-read contract.
class BufferPool {
 public:
  /// `capacity` is the number of resident frames (>= 1).
  BufferPool(Pager* pager, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the pager on a miss.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh page in the pager, pins it, and formats nothing —
  /// the caller is expected to Init() it. The frame starts dirty.
  Result<PageGuard> New();

  /// Writes all dirty frames back to the pager.
  Status FlushAll();

  /// FlushAll, skipping page `skip` (checkpoint write ordering: data
  /// pages reach the platter before the catalog page is rewritten).
  Status FlushAllExcept(PageId skip);

  /// Flushes one page if it is resident and dirty, then syncs.
  Status FlushPage(PageId id);

  /// Attaches the write-ahead log maintenance transactions commit
  /// through. Call once, before the first BeginWalTxn().
  void SetWal(Wal* wal);

  /// Starts (or joins) a maintenance transaction: pages fetched from here
  /// on get a before-image captured on first touch, and dirtied pages are
  /// logged as a batch by CommitWalTxn(). No-op without a WAL attached.
  void BeginWalTxn();

  /// Commits the active maintenance transaction: appends the after-image
  /// of every page dirtied since BeginWalTxn() plus a commit record to
  /// the WAL and blocks until durable. On error the transaction stays
  /// open (nothing was acknowledged) and a later commit retries.
  Status CommitWalTxn();

  /// True while a maintenance transaction is open.
  bool wal_txn_active() const;

  /// Cache statistics (for tests and the resource-requirements bench).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return frames_.size(); }

  Pager* pager() { return pager_; }

 private:
  friend class PageGuard;

  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    // Dirtied by the open maintenance transaction and not yet committed
    // to the WAL. Evicting such a frame is a steal: its before-image goes
    // to the WAL first.
    bool txn_dirty = false;
    // Position in lru_ when unpinned and resident.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Finds a frame to (re)use: a never-used frame or the LRU unpinned one.
  /// Caller must hold mu_.
  Result<size_t> GrabFrame();
  void Unpin(size_t frame);
  void MarkDirty(size_t frame);
  /// Caller must hold mu_.
  Status FlushFrame(size_t frame);
  /// FlushFrame preceded by an undo-record append when the frame is
  /// transaction-dirty (the steal path). Caller must hold mu_.
  Status FlushFrameWithUndo(size_t frame);
  /// Captures page `id`'s before-image on first touch within the open
  /// transaction. Caller must hold mu_; `data` is the current image.
  void CaptureBeforeImage(PageId id, const char* data);

  Pager* pager_;
  Wal* wal_ = nullptr;
  mutable std::mutex mu_;  // guards frames_ metadata, page_to_frame_,
                           // lru_, and the txn_* state
  std::vector<Frame> frames_;
  size_t next_unused_frame_ = 0;
  std::unordered_map<PageId, size_t> page_to_frame_;
  std::list<size_t> lru_;  // front = least recently used
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};

  // Maintenance-transaction state (all under mu_). Dirtied pages are a
  // sorted set so the commit batch — and thus LSN assignment — is
  // deterministic, which the recovery-idempotence test leans on.
  bool txn_active_ = false;
  std::unordered_map<PageId, std::unique_ptr<char[]>> txn_before_;
  std::set<PageId> txn_dirtied_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_BUFFER_POOL_H_

// BufferPool: a fixed-capacity LRU cache of page frames over a Pager.
//
// Callers access pages through RAII PageGuards that pin the frame for the
// guard's lifetime. The pool is single-threaded by design (the fuzzy match
// pipeline is single-threaded, as in the paper's setup); there is no
// latching.

#ifndef FUZZYMATCH_STORAGE_BUFFER_POOL_H_
#define FUZZYMATCH_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace fuzzymatch {

class BufferPool;

/// Pins one page frame while alive; movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  /// True if this guard holds a page.
  bool valid() const { return pool_ != nullptr; }

  /// Id of the pinned page.
  PageId page_id() const { return page_id_; }

  /// Typed view over the pinned frame.
  Page page();
  const Page page() const;

  /// Raw frame bytes.
  char* data();

  /// Marks the frame dirty so it is written back before eviction.
  void MarkDirty();

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame, PageId page_id)
      : pool_(pool), frame_(frame), page_id_(page_id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

/// LRU page cache. Evicts only unpinned frames; dirty frames are written
/// back on eviction and on FlushAll().
class BufferPool {
 public:
  /// `capacity` is the number of resident frames (>= 1).
  BufferPool(Pager* pager, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the pager on a miss.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh page in the pager, pins it, and formats nothing —
  /// the caller is expected to Init() it. The frame starts dirty.
  Result<PageGuard> New();

  /// Writes all dirty frames back to the pager.
  Status FlushAll();

  /// Cache statistics (for tests and the resource-requirements bench).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t capacity() const { return frames_.size(); }

  Pager* pager() { return pager_; }

 private:
  friend class PageGuard;

  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when unpinned and resident.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Finds a frame to (re)use: a never-used frame or the LRU unpinned one.
  Result<size_t> GrabFrame();
  void Unpin(size_t frame);
  void MarkDirty(size_t frame) { frames_[frame].dirty = true; }
  Status FlushFrame(size_t frame);

  Pager* pager_;
  std::vector<Frame> frames_;
  size_t next_unused_frame_ = 0;
  std::unordered_map<PageId, size_t> page_to_frame_;
  std::list<size_t> lru_;  // front = least recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_STORAGE_BUFFER_POOL_H_

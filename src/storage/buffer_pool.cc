#include "storage/buffer_pool.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/wal.h"

namespace fuzzymatch {

namespace {

// Registry mirrors of the per-pool hit/miss/eviction members: the pool
// accessors serve tests scoped to one pool; the registry aggregates all
// pools for the process-wide cache-hit-rate account.
obs::Counter& HitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bufferpool.hits");
  return *c;
}

obs::Counter& MissesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bufferpool.misses");
  return *c;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bufferpool.evictions");
  return *c;
}

}  // namespace

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), page_id_(other.page_id_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

// The lock-free frame accesses below are safe because a frame's byte
// buffer is allocated once (under mu_) and never moves, and the pin taken
// by Fetch/New keeps the frame from being evicted or re-pointed while any
// guard is alive.

Page PageGuard::page() {
  FM_CHECK(valid());
  return Page(pool_->frames_[frame_].data.get());
}

const Page PageGuard::page() const {
  FM_CHECK(valid());
  return Page(pool_->frames_[frame_].data.get());
}

char* PageGuard::data() {
  FM_CHECK(valid());
  return pool_->frames_[frame_].data.get();
}

void PageGuard::MarkDirty() {
  FM_CHECK(valid());
  pool_->MarkDirty(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  FM_CHECK_GE(capacity, size_t{1});
  frames_.resize(capacity);
  // Register all pool counters up front so a metrics dump shows them at
  // zero rather than omitting them when a workload never hits a path.
  HitsCounter();
  MissesCounter();
  EvictionsCounter();
}

Result<size_t> BufferPool::GrabFrame() {
  if (next_unused_frame_ < frames_.size()) {
    const size_t f = next_unused_frame_++;
    frames_[f].data = std::make_unique<char[]>(kPageSize);
    return f;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool: all frames pinned; increase capacity");
  }
  const size_t victim = lru_.front();
  if (frames_[victim].dirty) {
    // Fires before any pool state changes so an injected error leaves the
    // victim evictable by the caller's retry.
    FM_FAIL_POINT("bufferpool.evict_dirty");
  }
  lru_.pop_front();
  Frame& fr = frames_[victim];
  fr.in_lru = false;
  FM_CHECK_EQ(fr.pin_count, 0u);
  if (fr.dirty) {
    FM_RETURN_IF_ERROR(FlushFrameWithUndo(victim));
  }
  page_to_frame_.erase(fr.page_id);
  fr.page_id = kInvalidPageId;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  EvictionsCounter().Increment();
  return victim;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    HitsCounter().Increment();
    Frame& fr = frames_[it->second];
    if (fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    ++fr.pin_count;
    CaptureBeforeImage(id, fr.data.get());
    return PageGuard(this, it->second, id);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  MissesCounter().Increment();
  obs::AddTraceCount("bufferpool_misses", 1);
  FM_ASSIGN_OR_RETURN(const size_t f, GrabFrame());
  Frame& fr = frames_[f];
  FM_RETURN_IF_ERROR(pager_->ReadPage(id, fr.data.get()));
  fr.page_id = id;
  fr.pin_count = 1;
  fr.dirty = false;
  fr.txn_dirty = false;
  page_to_frame_[id] = f;
  CaptureBeforeImage(id, fr.data.get());
  return PageGuard(this, f, id);
}

Result<PageGuard> BufferPool::New() {
  std::lock_guard<std::mutex> lock(mu_);
  FM_ASSIGN_OR_RETURN(const PageId id, pager_->AllocatePage());
  FM_ASSIGN_OR_RETURN(const size_t f, GrabFrame());
  Frame& fr = frames_[f];
  std::memset(fr.data.get(), 0, kPageSize);
  fr.page_id = id;
  fr.pin_count = 1;
  fr.dirty = true;
  fr.txn_dirty = txn_active_;
  page_to_frame_[id] = f;
  // The before-image of a page born inside the transaction is all zeros
  // (the pager extended the file with a zero page).
  CaptureBeforeImage(id, fr.data.get());
  if (txn_active_) {
    txn_dirtied_.insert(id);
  }
  return PageGuard(this, f, id);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& fr = frames_[frame];
  FM_CHECK_GT(fr.pin_count, 0u);
  if (--fr.pin_count == 0) {
    lru_.push_back(frame);
    fr.lru_pos = std::prev(lru_.end());
    fr.in_lru = true;
  }
}

void BufferPool::MarkDirty(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& fr = frames_[frame];
  fr.dirty = true;
  if (txn_active_) {
    fr.txn_dirty = true;
    txn_dirtied_.insert(fr.page_id);
  }
}

Status BufferPool::FlushFrame(size_t frame) {
  Frame& fr = frames_[frame];
  FM_RETURN_IF_ERROR(pager_->WritePage(fr.page_id, fr.data.get()));
  fr.dirty = false;
  return Status::OK();
}

Status BufferPool::FlushFrameWithUndo(size_t frame) {
  Frame& fr = frames_[frame];
  if (fr.txn_dirty && wal_ != nullptr) {
    // Steal: the page leaves the pool ahead of its commit record, so its
    // before-image must be durable in the log first — recovery undoes the
    // write unless a commit supersedes it.
    const auto it = txn_before_.find(fr.page_id);
    if (it != txn_before_.end()) {
      FM_RETURN_IF_ERROR(wal_->AppendUndo(fr.page_id, it->second.get()));
    } else {
      FM_LOG(Warning) << "page " << fr.page_id
                      << " stolen without a before-image";
    }
    fr.txn_dirty = false;
  }
  return FlushFrame(frame);
}

void BufferPool::SetWal(Wal* wal) { wal_ = wal; }

void BufferPool::BeginWalTxn() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    return;
  }
  txn_active_ = true;
}

bool BufferPool::wal_txn_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_active_;
}

void BufferPool::CaptureBeforeImage(PageId id, const char* data) {
  if (!txn_active_) {
    return;
  }
  auto& slot = txn_before_[id];
  if (slot == nullptr) {
    slot = std::make_unique<char[]>(kPageSize);
    std::memcpy(slot.get(), data, kPageSize);
  }
}

Status BufferPool::CommitWalTxn() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!txn_active_) {
    return Status::OK();
  }
  FM_FAIL_POINT("wal.commit");
  // After-images: resident frames carry the latest bytes; stolen pages
  // were flushed to the main file, which therefore does.
  std::vector<std::unique_ptr<char[]>> images;
  std::vector<std::pair<PageId, char*>> batch;
  images.reserve(txn_dirtied_.size());
  batch.reserve(txn_dirtied_.size());
  for (const PageId id : txn_dirtied_) {
    auto img = std::make_unique<char[]>(kPageSize);
    const auto it = page_to_frame_.find(id);
    if (it != page_to_frame_.end()) {
      std::memcpy(img.get(), frames_[it->second].data.get(), kPageSize);
    } else {
      FM_RETURN_IF_ERROR(pager_->ReadPage(id, img.get()));
    }
    batch.emplace_back(id, img.get());
    images.push_back(std::move(img));
  }
  if (!batch.empty()) {
    // Blocks until the batch plus its commit record are durable. On error
    // the transaction stays open: nothing gets acknowledged, and a later
    // commit (or the caller's retry) re-logs the same pages.
    FM_RETURN_IF_ERROR(wal_->CommitPages(batch).status());
    for (const auto& [id, img] : batch) {
      const auto it = page_to_frame_.find(id);
      if (it != page_to_frame_.end()) {
        Frame& fr = frames_[it->second];
        Page(fr.data.get()).set_lsn(Page(img).lsn());
        fr.txn_dirty = false;
      }
    }
  }
  txn_before_.clear();
  txn_dirtied_.clear();
  txn_active_ = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  FM_FAIL_POINT("bufferpool.flush_all");
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t f = 0; f < next_unused_frame_; ++f) {
    if (frames_[f].page_id != kInvalidPageId && frames_[f].dirty) {
      FM_RETURN_IF_ERROR(FlushFrameWithUndo(f));
    }
  }
  return pager_->Sync();
}

Status BufferPool::FlushAllExcept(PageId skip) {
  FM_FAIL_POINT("bufferpool.flush_all");
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t f = 0; f < next_unused_frame_; ++f) {
    if (frames_[f].page_id != kInvalidPageId && frames_[f].page_id != skip &&
        frames_[f].dirty) {
      FM_RETURN_IF_ERROR(FlushFrameWithUndo(f));
    }
  }
  return pager_->Sync();
}

Status BufferPool::FlushPage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = page_to_frame_.find(id);
  if (it == page_to_frame_.end() || !frames_[it->second].dirty) {
    return Status::OK();
  }
  FM_RETURN_IF_ERROR(FlushFrameWithUndo(it->second));
  return pager_->Sync();
}

}  // namespace fuzzymatch

#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fuzzymatch {

namespace {

// Registry mirrors of the per-pool hit/miss/eviction members: the pool
// accessors serve tests scoped to one pool; the registry aggregates all
// pools for the process-wide cache-hit-rate account.
obs::Counter& HitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bufferpool.hits");
  return *c;
}

obs::Counter& MissesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bufferpool.misses");
  return *c;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("bufferpool.evictions");
  return *c;
}

}  // namespace

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), page_id_(other.page_id_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

// The lock-free frame accesses below are safe because a frame's byte
// buffer is allocated once (under mu_) and never moves, and the pin taken
// by Fetch/New keeps the frame from being evicted or re-pointed while any
// guard is alive.

Page PageGuard::page() {
  FM_CHECK(valid());
  return Page(pool_->frames_[frame_].data.get());
}

const Page PageGuard::page() const {
  FM_CHECK(valid());
  return Page(pool_->frames_[frame_].data.get());
}

char* PageGuard::data() {
  FM_CHECK(valid());
  return pool_->frames_[frame_].data.get();
}

void PageGuard::MarkDirty() {
  FM_CHECK(valid());
  pool_->MarkDirty(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  FM_CHECK_GE(capacity, size_t{1});
  frames_.resize(capacity);
  // Register all pool counters up front so a metrics dump shows them at
  // zero rather than omitting them when a workload never hits a path.
  HitsCounter();
  MissesCounter();
  EvictionsCounter();
}

Result<size_t> BufferPool::GrabFrame() {
  if (next_unused_frame_ < frames_.size()) {
    const size_t f = next_unused_frame_++;
    frames_[f].data = std::make_unique<char[]>(kPageSize);
    return f;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool: all frames pinned; increase capacity");
  }
  const size_t victim = lru_.front();
  if (frames_[victim].dirty) {
    // Fires before any pool state changes so an injected error leaves the
    // victim evictable by the caller's retry.
    FM_FAIL_POINT("bufferpool.evict_dirty");
  }
  lru_.pop_front();
  Frame& fr = frames_[victim];
  fr.in_lru = false;
  FM_CHECK_EQ(fr.pin_count, 0u);
  if (fr.dirty) {
    FM_RETURN_IF_ERROR(FlushFrame(victim));
  }
  page_to_frame_.erase(fr.page_id);
  fr.page_id = kInvalidPageId;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  EvictionsCounter().Increment();
  return victim;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    HitsCounter().Increment();
    Frame& fr = frames_[it->second];
    if (fr.in_lru) {
      lru_.erase(fr.lru_pos);
      fr.in_lru = false;
    }
    ++fr.pin_count;
    return PageGuard(this, it->second, id);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  MissesCounter().Increment();
  obs::AddTraceCount("bufferpool_misses", 1);
  FM_ASSIGN_OR_RETURN(const size_t f, GrabFrame());
  Frame& fr = frames_[f];
  FM_RETURN_IF_ERROR(pager_->ReadPage(id, fr.data.get()));
  fr.page_id = id;
  fr.pin_count = 1;
  fr.dirty = false;
  page_to_frame_[id] = f;
  return PageGuard(this, f, id);
}

Result<PageGuard> BufferPool::New() {
  std::lock_guard<std::mutex> lock(mu_);
  FM_ASSIGN_OR_RETURN(const PageId id, pager_->AllocatePage());
  FM_ASSIGN_OR_RETURN(const size_t f, GrabFrame());
  Frame& fr = frames_[f];
  std::memset(fr.data.get(), 0, kPageSize);
  fr.page_id = id;
  fr.pin_count = 1;
  fr.dirty = true;
  page_to_frame_[id] = f;
  return PageGuard(this, f, id);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& fr = frames_[frame];
  FM_CHECK_GT(fr.pin_count, 0u);
  if (--fr.pin_count == 0) {
    lru_.push_back(frame);
    fr.lru_pos = std::prev(lru_.end());
    fr.in_lru = true;
  }
}

void BufferPool::MarkDirty(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame].dirty = true;
}

Status BufferPool::FlushFrame(size_t frame) {
  Frame& fr = frames_[frame];
  FM_RETURN_IF_ERROR(pager_->WritePage(fr.page_id, fr.data.get()));
  fr.dirty = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  FM_FAIL_POINT("bufferpool.flush_all");
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t f = 0; f < next_unused_frame_; ++f) {
    if (frames_[f].page_id != kInvalidPageId && frames_[f].dirty) {
      FM_RETURN_IF_ERROR(FlushFrame(f));
    }
  }
  return pager_->Sync();
}

}  // namespace fuzzymatch

#include "text/token_frequency.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/md5.h"

namespace fuzzymatch {

namespace {

/// token string -> frequency, one map per column.
class ExactFrequencyCache : public TokenFrequencyCache {
 public:
  void Add(std::string_view token, uint32_t column) override {
    AddCount(token, column, 1);
  }

  void AddCount(std::string_view token, uint32_t column,
                uint32_t count) override {
    if (column >= maps_.size()) {
      maps_.resize(column + 1);
    }
    auto [it, inserted] = maps_[column].try_emplace(std::string(token), 0u);
    it->second += count;
    if (inserted) {
      bytes_ += token.size() + 48;  // rough node + string overhead
    }
  }

  uint32_t Frequency(std::string_view token, uint32_t column) const override {
    if (column >= maps_.size()) {
      return 0;
    }
    const auto it = maps_[column].find(std::string(token));
    return it == maps_[column].end() ? 0 : it->second;
  }

  size_t ApproxBytes() const override { return bytes_; }

  size_t EntryCount() const override {
    size_t n = 0;
    for (const auto& m : maps_) {
      n += m.size();
    }
    return n;
  }

  void ForEachEntry(const std::function<void(uint32_t, uint32_t)>& fn)
      const override {
    for (uint32_t col = 0; col < maps_.size(); ++col) {
      for (const auto& [token, freq] : maps_[col]) {
        fn(col, freq);
      }
    }
  }

 private:
  std::vector<std::unordered_map<std::string, uint32_t>> maps_;
  size_t bytes_ = 0;
};

/// 128-bit MD5 digest of (column, token) -> frequency. 24 bytes per entry
/// as in the paper's sizing: 16-byte hash + 4-byte column + 4-byte count.
class Md5FrequencyCache : public TokenFrequencyCache {
 public:
  void Add(std::string_view token, uint32_t column) override {
    AddCount(token, column, 1);
  }

  void AddCount(std::string_view token, uint32_t column,
                uint32_t count) override {
    Entry& entry = map_[DigestKey(token, column)];
    entry.freq += count;
    entry.column = column;  // kept alongside for ForEachEntry
  }

  uint32_t Frequency(std::string_view token, uint32_t column) const override {
    const auto it = map_.find(DigestKey(token, column));
    return it == map_.end() ? 0 : it->second.freq;
  }

  size_t ApproxBytes() const override { return map_.size() * 24; }

  size_t EntryCount() const override { return map_.size(); }

  void ForEachEntry(const std::function<void(uint32_t, uint32_t)>& fn)
      const override {
    for (const auto& [key, entry] : map_) {
      fn(entry.column, entry.freq);
    }
  }

 private:
  struct Entry {
    uint32_t freq = 0;
    uint32_t column = 0;
  };

  using Key = std::pair<uint64_t, uint64_t>;

  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.first ^ Mix64(k.second));
    }
  };

  static Key DigestKey(std::string_view token, uint32_t column) {
    Md5 md5;
    md5.Update(reinterpret_cast<const char*>(&column), sizeof(column));
    md5.Update(token);
    const Md5Digest d = md5.Finish();
    return {d.Low64(), d.High64()};
  }

  std::unordered_map<Key, Entry, KeyHash> map_;
};

/// Fixed bucket arrays; distinct tokens hashing to the same bucket share a
/// count. Mimics the paper's "cache with collisions".
class BoundedFrequencyCache : public TokenFrequencyCache {
 public:
  explicit BoundedFrequencyCache(size_t buckets) : buckets_(buckets) {
    FM_CHECK_GT(buckets, size_t{0});
  }

  void Add(std::string_view token, uint32_t column) override {
    AddCount(token, column, 1);
  }

  void AddCount(std::string_view token, uint32_t column,
                uint32_t count) override {
    if (column >= counts_.size()) {
      counts_.resize(column + 1);
    }
    auto& col = counts_[column];
    if (col.empty()) {
      col.assign(buckets_, 0u);
    }
    col[Bucket(token)] += count;
  }

  uint32_t Frequency(std::string_view token, uint32_t column) const override {
    if (column >= counts_.size() || counts_[column].empty()) {
      return 0;
    }
    return counts_[column][Bucket(token)];
  }

  size_t ApproxBytes() const override {
    size_t n = 0;
    for (const auto& col : counts_) {
      n += col.size() * sizeof(uint32_t);
    }
    return n;
  }

  size_t EntryCount() const override {
    size_t n = 0;
    for (const auto& col : counts_) {
      for (const uint32_t c : col) {
        n += (c > 0);
      }
    }
    return n;
  }

  void ForEachEntry(const std::function<void(uint32_t, uint32_t)>& fn)
      const override {
    for (uint32_t col = 0; col < counts_.size(); ++col) {
      for (const uint32_t c : counts_[col]) {
        if (c > 0) {
          fn(col, c);
        }
      }
    }
  }

 private:
  size_t Bucket(std::string_view token) const {
    return Hash64(token, /*seed=*/0x7a3b9c1dULL) % buckets_;
  }

  size_t buckets_;
  std::vector<std::vector<uint32_t>> counts_;
};

}  // namespace

std::unique_ptr<TokenFrequencyCache> MakeFrequencyCache(
    FrequencyCacheKind kind, size_t bounded_buckets) {
  switch (kind) {
    case FrequencyCacheKind::kExact:
      return std::make_unique<ExactFrequencyCache>();
    case FrequencyCacheKind::kMd5:
      return std::make_unique<Md5FrequencyCache>();
    case FrequencyCacheKind::kBounded:
      return std::make_unique<BoundedFrequencyCache>(bounded_buckets);
  }
  return nullptr;
}

}  // namespace fuzzymatch

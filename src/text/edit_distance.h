// Edit distance (Section 3 of the paper).
//
// ed(s1, s2) is the minimum number of character edits (insert, delete,
// substitute) transforming s1 into s2, normalized by max(|s1|, |s2|). The
// paper's example: ed("company", "corporation") = 7/11 ≈ 0.64.

#ifndef FUZZYMATCH_TEXT_EDIT_DISTANCE_H_
#define FUZZYMATCH_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace fuzzymatch {

/// Raw Levenshtein distance with unit costs.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with an early exit: returns the exact distance if
/// it is <= `bound`, otherwise any value > `bound`. Runs the banded DP in
/// O(bound * min(|a|,|b|)).
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t bound);

/// ed(a, b) = Levenshtein(a, b) / max(|a|, |b|), in [0, 1].
/// ed("", "") is defined as 0 (identical strings).
double NormalizedEditDistance(std::string_view a, std::string_view b);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_TEXT_EDIT_DISTANCE_H_

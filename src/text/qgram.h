// Q-gram sets (Section 4.1 of the paper).
//
// QG_q(s) is the set of all length-q substrings of s, e.g.
// QG_3("boeing") = {boe, oei, ein, ing}. For tokens shorter than q the
// paper treats the token itself as its q-gram set / signature.

#ifndef FUZZYMATCH_TEXT_QGRAM_H_
#define FUZZYMATCH_TEXT_QGRAM_H_

#include <string>
#include <string_view>
#include <vector>

namespace fuzzymatch {

/// QG_q(s): sorted, deduplicated q-grams of `s`. If |s| < q (or s is
/// empty), returns {s} per the paper's short-token convention — except the
/// empty string, which yields an empty set.
std::vector<std::string> QGramSet(std::string_view s, int q);

/// Jaccard coefficient |A ∩ B| / |A ∪ B| of two sorted unique sets.
/// Returns 1.0 when both are empty.
double JaccardSorted(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// sim(QG(a), QG(b)): Jaccard coefficient of the q-gram sets.
double QGramJaccard(std::string_view a, std::string_view b, int q);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_TEXT_QGRAM_H_

// IDF token weights (Section 3 of the paper).
//
// w(t, i) = log(|R| / freq(t, i)) for tokens seen in column i of the
// reference relation. A token unseen in column i is presumed to be an
// erroneous version of some reference token, so it gets the average weight
// of all tokens in that column.

#ifndef FUZZYMATCH_TEXT_IDF_WEIGHTS_H_
#define FUZZYMATCH_TEXT_IDF_WEIGHTS_H_

#include <memory>
#include <vector>

#include "text/token_frequency.h"
#include "text/tokenizer.h"

namespace fuzzymatch {

/// Immutable IDF weight table built from the reference relation.
class IdfWeights {
 public:
  /// Accumulates per-column token frequencies tuple by tuple.
  class Builder {
   public:
    /// Takes ownership of an empty cache to fill (defaults to exact).
    explicit Builder(std::unique_ptr<TokenFrequencyCache> cache =
                         MakeFrequencyCache(FrequencyCacheKind::kExact));

    /// Feeds tok(v) of one reference tuple. Duplicate tokens within one
    /// column of the same tuple count once (freq counts tuples).
    void AddTuple(const TokenizedTuple& tuple);

    /// Bulk-merge interface for the parallel reference scan: each worker
    /// tallies (token, column) -> distinct-tuple count locally, and the
    /// tallies merge here at the post-scan barrier. `count` must already
    /// be de-duplicated per tuple (AddTuple semantics).
    void AddTokenCount(std::string_view token, uint32_t column,
                       uint32_t count);

    /// Accounts for `n` scanned tuples whose tokens arrive (or arrived)
    /// via AddTokenCount.
    void AddTupleCount(uint64_t n);

    /// Seals the weights; the Builder must not be reused.
    IdfWeights Finish();

   private:
    std::unique_ptr<TokenFrequencyCache> cache_;
    uint64_t num_tuples_ = 0;
  };

  /// w(t, i). Never negative: bounded-cache collisions can make
  /// freq > |R|, in which case the weight clamps to 0.
  double Weight(std::string_view token, uint32_t column) const;

  /// freq(t, i) as stored in the cache.
  uint32_t Frequency(std::string_view token, uint32_t column) const {
    return cache_->Frequency(token, column);
  }

  /// w(u): total weight of all tokens of a tokenized tuple (multiset —
  /// repeated tokens count each time).
  double TupleWeight(const TokenizedTuple& tuple) const;

  /// The average token weight of column i (the weight of unseen tokens).
  double AverageWeight(uint32_t column) const;

  /// |R| used in the IDF formula.
  uint64_t num_tuples() const { return num_tuples_; }

  const TokenFrequencyCache& cache() const { return *cache_; }

 private:
  IdfWeights(std::shared_ptr<const TokenFrequencyCache> cache,
             uint64_t num_tuples, std::vector<double> column_avg,
             double global_avg)
      : cache_(std::move(cache)),
        num_tuples_(num_tuples),
        column_avg_(std::move(column_avg)),
        global_avg_(global_avg) {}

  std::shared_ptr<const TokenFrequencyCache> cache_;
  uint64_t num_tuples_ = 0;
  std::vector<double> column_avg_;
  double global_avg_ = 1.0;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_TEXT_IDF_WEIGHTS_H_

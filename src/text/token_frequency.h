// Token-frequency caches (Section 4.4.1 of the paper).
//
// freq(t, i) is the number of reference tuples whose i-th column contains
// token t; IDF weights are computed from it at query time. The paper keeps
// these frequencies in a main-memory cache and discusses three designs,
// all implemented here:
//   - exact:   token string -> frequency (the default);
//   - MD5:     16-byte digest -> frequency ("cache without collisions",
//              smaller, collision-free for all practical purposes);
//   - bounded: a fixed number of buckets, where distinct tokens may
//              collapse ("cache with collisions", trades accuracy for
//              memory; collisions inflate frequencies and so distort
//              weights).

#ifndef FUZZYMATCH_TEXT_TOKEN_FREQUENCY_H_
#define FUZZYMATCH_TEXT_TOKEN_FREQUENCY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

namespace fuzzymatch {

/// Frequency store for column-qualified tokens.
class TokenFrequencyCache {
 public:
  virtual ~TokenFrequencyCache() = default;

  /// Records that one reference tuple contains `token` in `column`.
  /// Callers must de-duplicate tokens within a tuple first: freq counts
  /// tuples, not occurrences.
  virtual void Add(std::string_view token, uint32_t column) = 0;

  /// Records that `count` distinct reference tuples contain `token` in
  /// `column` — the bulk form of Add(), used to merge the per-worker
  /// tallies of a parallel reference scan. Equivalent to calling Add()
  /// `count` times for every cache flavour (bounded-cache collisions
  /// included: counts land in the same bucket either way).
  virtual void AddCount(std::string_view token, uint32_t column,
                        uint32_t count) = 0;

  /// freq(token, column); 0 if the token was never seen in that column.
  virtual uint32_t Frequency(std::string_view token,
                             uint32_t column) const = 0;

  /// Approximate resident bytes (for the Section 4.4.1 sizing analysis).
  virtual size_t ApproxBytes() const = 0;

  /// Number of distinct entries stored.
  virtual size_t EntryCount() const = 0;

  /// Visits every stored (column, frequency) entry; used to compute the
  /// per-column average IDF weight for unseen tokens.
  virtual void ForEachEntry(
      const std::function<void(uint32_t column, uint32_t freq)>& fn)
      const = 0;
};

enum class FrequencyCacheKind {
  kExact,
  kMd5,
  kBounded,
};

/// Creates a cache. `bounded_buckets` is the per-column bucket count for
/// kBounded (ignored otherwise; must be > 0 for kBounded).
std::unique_ptr<TokenFrequencyCache> MakeFrequencyCache(
    FrequencyCacheKind kind, size_t bounded_buckets = 0);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_TEXT_TOKEN_FREQUENCY_H_

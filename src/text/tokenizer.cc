#include "text/tokenizer.h"

#include "common/string_util.h"

namespace fuzzymatch {

Tokenizer::Tokenizer(std::string delimiters)
    : delimiters_(std::move(delimiters)) {}

std::vector<std::string> Tokenizer::TokenizeField(
    std::string_view value) const {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t pos = value.find_first_of(delimiters_, start);
    const size_t end = (pos == std::string_view::npos) ? value.size() : pos;
    if (end > start) {
      out.push_back(AsciiLower(value.substr(start, end - start)));
    }
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

TokenizedTuple Tokenizer::TokenizeTuple(
    const std::vector<std::optional<std::string>>& row) const {
  TokenizedTuple out;
  out.reserve(row.size());
  for (const auto& field : row) {
    if (field.has_value()) {
      out.push_back(TokenizeField(*field));
    } else {
      out.emplace_back();
    }
  }
  return out;
}

size_t TokenCount(const TokenizedTuple& t) {
  size_t n = 0;
  for (const auto& col : t) {
    n += col.size();
  }
  return n;
}

size_t TokenCharLength(const TokenizedTuple& t) {
  size_t n = 0;
  for (const auto& col : t) {
    for (const auto& tok : col) {
      n += tok.size();
    }
  }
  return n;
}

}  // namespace fuzzymatch

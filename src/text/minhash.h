// Min-hash signatures of token q-gram sets (Section 4.1 of the paper).
//
// mh(S) = [mh_1(S), ..., mh_H(S)] where mh_i(S) = argmin_{a in S} h_i(a)
// for H seeded hash functions h_i. E[fraction of matching coordinates]
// equals the Jaccard coefficient of the two sets, which is what makes the
// ETI a probabilistically safe filter (Lemma 4.1).

#ifndef FUZZYMATCH_TEXT_MINHASH_H_
#define FUZZYMATCH_TEXT_MINHASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fuzzymatch {

/// Computes min-hash signatures over q-gram sets.
class MinHasher {
 public:
  /// `q` is the q-gram size (paper default 4), `hash_count` is H (the
  /// signature size; 0 means token-only signatures are in use), and `seed`
  /// makes the h_i family reproducible. The same (q, H, seed) must be used
  /// for ETI building and query processing.
  MinHasher(int q, int hash_count, uint64_t seed);

  /// mh(token): H q-grams. Per the paper, if |token| <= q the signature is
  /// the token itself (a single coordinate).
  std::vector<std::string> Signature(std::string_view token) const;

  /// Fraction of coordinate-wise matches between two signatures of equal
  /// semantics; signatures of different lengths compare pointwise over the
  /// shorter prefix. sim_mh in the paper.
  static double SignatureSimilarity(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b);

  int q() const { return q_; }
  int hash_count() const { return hash_count_; }
  uint64_t seed() const { return seed_; }

 private:
  int q_;
  int hash_count_;
  uint64_t seed_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_TEXT_MINHASH_H_

#include "text/minhash.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace fuzzymatch {

MinHasher::MinHasher(int q, int hash_count, uint64_t seed)
    : q_(q), hash_count_(hash_count), seed_(seed) {
  FM_CHECK_GE(q, 1);
  FM_CHECK_GE(hash_count, 0);
}

std::vector<std::string> MinHasher::Signature(std::string_view token) const {
  std::vector<std::string> sig;
  if (token.empty()) {
    return sig;
  }
  if (token.size() <= static_cast<size_t>(q_)) {
    sig.emplace_back(token);
    return sig;
  }
  if (hash_count_ == 0) {
    return sig;
  }
  sig.reserve(static_cast<size_t>(hash_count_));
  const size_t uq = static_cast<size_t>(q_);
  for (int i = 0; i < hash_count_; ++i) {
    const uint64_t hseed = HashCombine(seed_, static_cast<uint64_t>(i));
    std::string_view best;
    uint64_t best_hash = 0;
    bool first = true;
    for (size_t p = 0; p + uq <= token.size(); ++p) {
      const std::string_view gram = token.substr(p, uq);
      const uint64_t h = Hash64(gram, hseed);
      if (first || h < best_hash ||
          (h == best_hash && gram < best)) {
        best = gram;
        best_hash = h;
        first = false;
      }
    }
    sig.emplace_back(best);
  }
  return sig;
}

double MinHasher::SignatureSimilarity(const std::vector<std::string>& a,
                                      const std::vector<std::string>& b) {
  const size_t n = std::max(a.size(), b.size());
  if (n == 0) {
    return 0.0;
  }
  const size_t common = std::min(a.size(), b.size());
  size_t matches = 0;
  for (size_t i = 0; i < common; ++i) {
    if (a[i] == b[i]) {
      ++matches;
    }
  }
  return static_cast<double>(matches) / static_cast<double>(n);
}

}  // namespace fuzzymatch

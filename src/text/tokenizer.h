// Tokenization (Section 3 of the paper).
//
// tok(s) splits a string into lowercase tokens on a delimiter set (white
// space by default). Tokens carry a column property: 'madison' in the name
// column is a different token from 'madison' in the city column, which is
// modelled here by keeping tokens column-aligned in a TokenizedTuple.

#ifndef FUZZYMATCH_TEXT_TOKENIZER_H_
#define FUZZYMATCH_TEXT_TOKENIZER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fuzzymatch {

/// tok(v): the column-aligned token lists of one tuple. tokens[i] is
/// tok(v[i]) in order of appearance; a NULL attribute yields an empty list.
using TokenizedTuple = std::vector<std::vector<std::string>>;

/// Splits attribute values into lowercase tokens.
class Tokenizer {
 public:
  /// `delimiters` defaults to the white-space characters, per the paper.
  explicit Tokenizer(std::string delimiters = " \t\r\n");

  /// tok(s) for one attribute value: lowercased, delimiter-split, empty
  /// pieces dropped. Preserves order and duplicates (tok(v) is a multiset).
  std::vector<std::string> TokenizeField(std::string_view value) const;

  /// tok(v) for a whole tuple of nullable attribute values.
  TokenizedTuple TokenizeTuple(
      const std::vector<std::optional<std::string>>& row) const;

  const std::string& delimiters() const { return delimiters_; }

 private:
  std::string delimiters_;
};

/// Total number of tokens in a tokenized tuple.
size_t TokenCount(const TokenizedTuple& t);

/// L(z): total character length of all tokens (used by the ed baseline).
size_t TokenCharLength(const TokenizedTuple& t);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_TEXT_TOKENIZER_H_

#include "text/idf_weights.h"

#include <algorithm>
#include <cmath>

namespace fuzzymatch {

IdfWeights::Builder::Builder(std::unique_ptr<TokenFrequencyCache> cache)
    : cache_(std::move(cache)) {}

void IdfWeights::Builder::AddTuple(const TokenizedTuple& tuple) {
  ++num_tuples_;
  std::vector<std::string> seen;
  for (uint32_t col = 0; col < tuple.size(); ++col) {
    seen.assign(tuple[col].begin(), tuple[col].end());
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    for (const auto& token : seen) {
      cache_->Add(token, col);
    }
  }
}

void IdfWeights::Builder::AddTokenCount(std::string_view token,
                                        uint32_t column, uint32_t count) {
  cache_->AddCount(token, column, count);
}

void IdfWeights::Builder::AddTupleCount(uint64_t n) { num_tuples_ += n; }

IdfWeights IdfWeights::Builder::Finish() {
  const double r = static_cast<double>(std::max<uint64_t>(num_tuples_, 1));
  std::vector<double> sums;
  std::vector<uint64_t> counts;
  cache_->ForEachEntry([&](uint32_t col, uint32_t freq) {
    if (col >= sums.size()) {
      sums.resize(col + 1, 0.0);
      counts.resize(col + 1, 0);
    }
    const double idf =
        std::max(0.0, std::log(r / static_cast<double>(freq)));
    sums[col] += idf;
    ++counts[col];
  });

  double global_sum = 0.0;
  uint64_t global_count = 0;
  std::vector<double> avg(sums.size(), 0.0);
  for (size_t col = 0; col < sums.size(); ++col) {
    if (counts[col] > 0) {
      avg[col] = sums[col] / static_cast<double>(counts[col]);
    }
    global_sum += sums[col];
    global_count += counts[col];
  }
  const double global_avg =
      global_count > 0 ? global_sum / static_cast<double>(global_count) : 1.0;
  // Columns with no tokens fall back to the global average.
  for (size_t col = 0; col < avg.size(); ++col) {
    if (counts[col] == 0) {
      avg[col] = global_avg;
    }
  }
  return IdfWeights(std::move(cache_), num_tuples_, std::move(avg),
                    global_avg);
}

double IdfWeights::Weight(std::string_view token, uint32_t column) const {
  const uint32_t freq = cache_->Frequency(token, column);
  if (freq == 0) {
    return AverageWeight(column);
  }
  const double r = static_cast<double>(std::max<uint64_t>(num_tuples_, 1));
  return std::max(0.0, std::log(r / static_cast<double>(freq)));
}

double IdfWeights::TupleWeight(const TokenizedTuple& tuple) const {
  double total = 0.0;
  for (uint32_t col = 0; col < tuple.size(); ++col) {
    for (const auto& token : tuple[col]) {
      total += Weight(token, col);
    }
  }
  return total;
}

double IdfWeights::AverageWeight(uint32_t column) const {
  if (column < column_avg_.size()) {
    return column_avg_[column];
  }
  return global_avg_;
}

}  // namespace fuzzymatch

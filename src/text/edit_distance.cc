#include "text/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace fuzzymatch {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  // a is the shorter string; single-row DP over |a|+1 cells.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) {
    row[i] = i;
  }
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];  // DP[j-1][0]
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t prev_row = row[i];  // DP[j-1][i]
      const size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i - 1] + 1, prev_row + 1, sub});
      prev_diag = prev_row;
    }
  }
  return row[a.size()];
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t bound) {
  if (a.size() > b.size()) {
    std::swap(a, b);
  }
  if (b.size() - a.size() > bound) {
    return bound + 1;
  }
  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  // Banded DP: only cells with |i - j| <= bound can be <= bound.
  std::vector<size_t> row(a.size() + 1, kInf);
  for (size_t i = 0; i <= std::min(a.size(), bound); ++i) {
    row[i] = i;
  }
  for (size_t j = 1; j <= b.size(); ++j) {
    const size_t lo = (j > bound) ? j - bound : 0;
    const size_t hi = std::min(a.size(), j + bound);
    size_t prev_diag = (lo == 0) ? j - 1 : row[lo - 1];
    if (lo == 0) {
      row[0] = j;
    } else {
      row[lo - 1] = kInf;
    }
    size_t row_min = kInf;
    for (size_t i = std::max<size_t>(lo, 1); i <= hi; ++i) {
      const size_t prev_row = row[i];
      const size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      const size_t left = (i >= 1) ? row[i - 1] : kInf;
      row[i] = std::min({left + 1, prev_row + 1, sub});
      prev_diag = prev_row;
      row_min = std::min(row_min, row[i]);
    }
    if (lo == 0) {
      row_min = std::min(row_min, row[0]);
    }
    if (row_min > bound) {
      return bound + 1;
    }
  }
  return row[a.size()] > bound ? bound + 1 : row[a.size()];
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  const size_t m = std::max(a.size(), b.size());
  if (m == 0) {
    return 0.0;
  }
  return static_cast<double>(LevenshteinDistance(a, b)) /
         static_cast<double>(m);
}

}  // namespace fuzzymatch

#include "text/qgram.h"

#include <algorithm>

namespace fuzzymatch {

std::vector<std::string> QGramSet(std::string_view s, int q) {
  std::vector<std::string> out;
  if (s.empty()) {
    return out;
  }
  const size_t uq = static_cast<size_t>(q);
  if (s.size() < uq) {
    out.emplace_back(s);
    return out;
  }
  out.reserve(s.size() - uq + 1);
  for (size_t i = 0; i + uq <= s.size(); ++i) {
    out.emplace_back(s.substr(i, uq));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double JaccardSorted(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - common;
  return static_cast<double>(common) / static_cast<double>(uni);
}

double QGramJaccard(std::string_view a, std::string_view b, int q) {
  return JaccardSorted(QGramSet(a, q), QGramSet(b, q));
}

}  // namespace fuzzymatch

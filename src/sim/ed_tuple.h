// Tuple-level edit distance baseline (Sections 1, 3.2, 6.2.1.1).
//
// The similarity the paper compares fms against: character-level edit
// distance over aligned columns, normalized by the larger total character
// length. Implicitly weights tokens by their length, which is what makes
// it prefer 'bon corporation' over 'boeing company' for input I3.

#ifndef FUZZYMATCH_SIM_ED_TUPLE_H_
#define FUZZYMATCH_SIM_ED_TUPLE_H_

#include "text/tokenizer.h"

namespace fuzzymatch {

/// ed-based similarity between two tokenized tuples:
/// 1 − (Σ_i Lev(u[i], v[i])) / max(L(u), L(v)), where each column value is
/// the lowercase tokens re-joined with single spaces and L is the total
/// joined length. Returns 1 for two empty tuples.
double EdTupleSimilarity(const TokenizedTuple& u, const TokenizedTuple& v);

/// The normalized tuple edit distance itself (1 − similarity).
double EdTupleDistance(const TokenizedTuple& u, const TokenizedTuple& v);

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SIM_ED_TUPLE_H_

#include "sim/ed_tuple.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/edit_distance.h"

namespace fuzzymatch {

namespace {
std::string JoinTokens(const std::vector<std::string>& tokens) {
  return Join(tokens, " ");
}
}  // namespace

double EdTupleDistance(const TokenizedTuple& u, const TokenizedTuple& v) {
  const size_t cols = std::max(u.size(), v.size());
  static const std::vector<std::string> kEmpty;
  size_t total_edits = 0;
  size_t len_u = 0;
  size_t len_v = 0;
  for (size_t col = 0; col < cols; ++col) {
    const std::string us = JoinTokens(col < u.size() ? u[col] : kEmpty);
    const std::string vs = JoinTokens(col < v.size() ? v[col] : kEmpty);
    total_edits += LevenshteinDistance(us, vs);
    len_u += us.size();
    len_v += vs.size();
  }
  const size_t denom = std::max(len_u, len_v);
  if (denom == 0) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(total_edits) /
                           static_cast<double>(denom));
}

double EdTupleSimilarity(const TokenizedTuple& u, const TokenizedTuple& v) {
  return 1.0 - EdTupleDistance(u, v);
}

}  // namespace fuzzymatch

// fms_apx and fms_t_apx: the indexable upper-bound approximations of fms
// (Sections 4.1 and 5.1 of the paper).
//
// fms_apx ignores token order, lets each input token match its best
// reference token in the same column, and replaces edit distance with
// min-hash similarity over q-gram sets:
//
//   fms_apx(u,v) = (1/w(u)) Σ_i Σ_{t in tok(u[i])} w(t) ·
//                  max_{r in tok(v[i])} min(1, (2/q)·sim_mh(t,r) + d_q),
//
// with d_q = 1 − 1/q. E[fms_apx] >= fms (Lemma 4.1), which is what makes
// ETI retrieval probabilistically safe. fms_t_apx splits each token's
// importance between the token itself and its signature (Section 5.1):
// sim'_mh(t,r) = ½(1[t = r] + sim_mh(t,r)).

#ifndef FUZZYMATCH_SIM_FMS_APX_H_
#define FUZZYMATCH_SIM_FMS_APX_H_

#include "text/idf_weights.h"
#include "text/minhash.h"
#include "text/tokenizer.h"

namespace fuzzymatch {

/// Evaluates the approximations directly (used by tests and analysis; the
/// matcher evaluates them implicitly through ETI scores).
class FmsApx {
 public:
  /// `weights` and `hasher` must outlive this object.
  FmsApx(const IdfWeights* weights, const MinHasher* hasher);

  /// fms_apx(u, v).
  double Apx(const TokenizedTuple& u, const TokenizedTuple& v) const;

  /// fms_t_apx(u, v).
  double TApx(const TokenizedTuple& u, const TokenizedTuple& v) const;

  /// The per-token-pair factor min(1, (2/q)·sim_mh + d_q).
  double TokenFactor(std::string_view t, std::string_view r) const;

  /// Same with sim'_mh (token identity mixed in).
  double TokenFactorWithToken(std::string_view t, std::string_view r) const;

 private:
  double Eval(const TokenizedTuple& u, const TokenizedTuple& v,
              bool with_token) const;

  const IdfWeights* weights_;
  const MinHasher* hasher_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SIM_FMS_APX_H_

#include "sim/fms.h"

#include <algorithm>

#include "common/logging.h"
#include "text/edit_distance.h"

namespace fuzzymatch {

FmsSimilarity::FmsSimilarity(const IdfWeights* weights, FmsOptions options)
    : weights_(weights), options_(std::move(options)) {
  FM_CHECK(weights != nullptr);
}

double FmsSimilarity::ColumnMultiplier(uint32_t column) const {
  if (column < options_.column_weights.size()) {
    return options_.column_weights[column];
  }
  return 1.0;
}

double FmsSimilarity::TokenWeight(std::string_view token,
                                  uint32_t column) const {
  return weights_->Weight(token, column) * ColumnMultiplier(column);
}

double FmsSimilarity::TupleWeight(const TokenizedTuple& u) const {
  double total = 0.0;
  for (uint32_t col = 0; col < u.size(); ++col) {
    for (const auto& token : u[col]) {
      total += TokenWeight(token, col);
    }
  }
  return total;
}

double FmsSimilarity::TranspositionPairCost(double w1, double w2) const {
  switch (options_.transposition_cost) {
    case TranspositionCost::kAverage:
      return (w1 + w2) / 2.0;
    case TranspositionCost::kMin:
      return std::min(w1, w2);
    case TranspositionCost::kMax:
      return std::max(w1, w2);
    case TranspositionCost::kConstant:
      return options_.transposition_constant;
  }
  return (w1 + w2) / 2.0;
}

double FmsSimilarity::ColumnTransformationCost(
    const std::vector<std::string>& u_tokens,
    const std::vector<std::string>& v_tokens, uint32_t column) const {
  const size_t m = u_tokens.size();
  const size_t n = v_tokens.size();

  // Per-token weights, computed once.
  std::vector<double> uw(m), vw(n);
  for (size_t i = 0; i < m; ++i) {
    uw[i] = TokenWeight(u_tokens[i], column);
  }
  for (size_t j = 0; j < n; ++j) {
    vw[j] = TokenWeight(v_tokens[j], column);
  }

  // dp[i][j] = min cost of transforming u_tokens[0,i) into v_tokens[0,j).
  // Kept as two (or three, with transpositions) rolling rows.
  std::vector<std::vector<double>> dp(m + 1,
                                      std::vector<double>(n + 1, 0.0));
  for (size_t i = 1; i <= m; ++i) {
    dp[i][0] = dp[i - 1][0] + uw[i - 1];  // delete u token
  }
  for (size_t j = 1; j <= n; ++j) {
    dp[0][j] = dp[0][j - 1] + options_.cins * vw[j - 1];  // insert v token
  }
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      const double replace =
          dp[i - 1][j - 1] +
          NormalizedEditDistance(u_tokens[i - 1], v_tokens[j - 1]) *
              uw[i - 1];
      const double del = dp[i - 1][j] + uw[i - 1];
      const double ins = dp[i][j - 1] + options_.cins * vw[j - 1];
      double best = std::min({replace, del, ins});
      if (options_.enable_transposition && i >= 2 && j >= 2) {
        // Swap u's adjacent pair, then transform each token to its (now
        // aligned) counterpart — a generalized Damerau move at token
        // granularity, so 'company beoing' still reaches 'boeing company'.
        const double transpose =
            dp[i - 2][j - 2] + TranspositionPairCost(uw[i - 2], uw[i - 1]) +
            NormalizedEditDistance(u_tokens[i - 2], v_tokens[j - 1]) *
                uw[i - 2] +
            NormalizedEditDistance(u_tokens[i - 1], v_tokens[j - 2]) *
                uw[i - 1];
        best = std::min(best, transpose);
      }
      dp[i][j] = best;
    }
  }
  return dp[m][n];
}

double FmsSimilarity::TransformationCost(const TokenizedTuple& u,
                                         const TokenizedTuple& v) const {
  const size_t cols = std::max(u.size(), v.size());
  static const std::vector<std::string> kEmpty;
  double total = 0.0;
  for (uint32_t col = 0; col < cols; ++col) {
    const auto& ut = col < u.size() ? u[col] : kEmpty;
    const auto& vt = col < v.size() ? v[col] : kEmpty;
    total += ColumnTransformationCost(ut, vt, col);
  }
  return total;
}

double FmsSimilarity::Similarity(const TokenizedTuple& u,
                                 const TokenizedTuple& v) const {
  const double wu = TupleWeight(u);
  if (wu <= 0.0) {
    // An input with no token weight matches nothing meaningfully.
    return 0.0;
  }
  const double tc = TransformationCost(u, v);
  return 1.0 - std::min(tc / wu, 1.0);
}

}  // namespace fuzzymatch

// The fuzzy match similarity function fms (Section 3.1 of the paper).
//
// fms(u, v) = 1 − min(tc(u, v) / w(u), 1), where tc(u, v) is the minimum
// total cost of transforming the input tuple u into the reference tuple v
// column by column using:
//   - token replacement  t1 -> t2 : cost ed(t1, t2) * w(t1, i)
//   - token insertion    of t     : cost c_ins * w(t, i)
//   - token deletion     of t     : cost w(t, i)
//   - token transposition (optional, Section 5.3): swap adjacent tokens
//     at cost g(w(t1), w(t2)), generalized Damerau-style so the swapped
//     tokens may additionally need replacements (e.g. 'company beoing'
//     reaches 'boeing company' with one swap + one cheap edit).
// Token weights are IDF weights from the reference relation, optionally
// scaled per column (Section 5.2). fms is asymmetric by design: u is dirty
// input, v is clean reference.

#ifndef FUZZYMATCH_SIM_FMS_H_
#define FUZZYMATCH_SIM_FMS_H_

#include <vector>

#include "text/idf_weights.h"
#include "text/tokenizer.h"

namespace fuzzymatch {

/// How a token transposition is priced from the two token weights.
enum class TranspositionCost {
  kAverage,
  kMin,
  kMax,
  kConstant,
};

struct FmsOptions {
  /// c_ins in [0, 1]: inserting a missing token is cheaper than deleting a
  /// spurious one ("absence of tokens is not penalized heavily").
  double cins = 0.5;

  /// Enables the token transposition operation (Section 5.3).
  bool enable_transposition = false;
  TranspositionCost transposition_cost = TranspositionCost::kAverage;
  /// Used when transposition_cost == kConstant.
  double transposition_constant = 0.5;

  /// Per-column importance multipliers W_i (Section 5.2). Empty = all 1.
  std::vector<double> column_weights;
};

/// Computes fms and its building blocks against a fixed weight table.
class FmsSimilarity {
 public:
  /// `weights` must outlive this object.
  explicit FmsSimilarity(const IdfWeights* weights, FmsOptions options = {});

  /// Effective token weight: IDF weight times the column multiplier.
  double TokenWeight(std::string_view token, uint32_t column) const;

  /// w(u) with column multipliers applied.
  double TupleWeight(const TokenizedTuple& u) const;

  /// tc(u[col], v[col]): minimum-cost transformation of one column's token
  /// sequence, via the edit-distance-style DP of [22] lifted to tokens.
  double ColumnTransformationCost(const std::vector<std::string>& u_tokens,
                                  const std::vector<std::string>& v_tokens,
                                  uint32_t column) const;

  /// tc(u, v) = sum over columns.
  double TransformationCost(const TokenizedTuple& u,
                            const TokenizedTuple& v) const;

  /// fms(u, v) in [0, 1].
  double Similarity(const TokenizedTuple& u, const TokenizedTuple& v) const;

  const FmsOptions& options() const { return options_; }
  const IdfWeights& weights() const { return *weights_; }

 private:
  double ColumnMultiplier(uint32_t column) const;
  double TranspositionPairCost(double w1, double w2) const;

  const IdfWeights* weights_;
  FmsOptions options_;
};

}  // namespace fuzzymatch

#endif  // FUZZYMATCH_SIM_FMS_H_

#include "sim/fms_apx.h"

#include <algorithm>

#include "common/logging.h"

namespace fuzzymatch {

FmsApx::FmsApx(const IdfWeights* weights, const MinHasher* hasher)
    : weights_(weights), hasher_(hasher) {
  FM_CHECK(weights != nullptr);
  FM_CHECK(hasher != nullptr);
}

double FmsApx::TokenFactor(std::string_view t, std::string_view r) const {
  const double q = static_cast<double>(hasher_->q());
  const double dq = 1.0 - 1.0 / q;
  const double sim = MinHasher::SignatureSimilarity(hasher_->Signature(t),
                                                    hasher_->Signature(r));
  return std::min(1.0, (2.0 / q) * sim + dq);
}

double FmsApx::TokenFactorWithToken(std::string_view t,
                                    std::string_view r) const {
  const double q = static_cast<double>(hasher_->q());
  const double dq = 1.0 - 1.0 / q;
  const double sim = MinHasher::SignatureSimilarity(hasher_->Signature(t),
                                                    hasher_->Signature(r));
  const double sim_t = 0.5 * ((t == r ? 1.0 : 0.0) + sim);
  return std::min(1.0, (2.0 / q) * sim_t + dq);
}

double FmsApx::Eval(const TokenizedTuple& u, const TokenizedTuple& v,
                    bool with_token) const {
  double wu = 0.0;
  double score = 0.0;
  for (uint32_t col = 0; col < u.size(); ++col) {
    for (const auto& t : u[col]) {
      const double wt = weights_->Weight(t, col);
      wu += wt;
      if (col >= v.size() || v[col].empty()) {
        continue;
      }
      double best = 0.0;
      for (const auto& r : v[col]) {
        const double factor =
            with_token ? TokenFactorWithToken(t, r) : TokenFactor(t, r);
        best = std::max(best, factor);
      }
      score += wt * best;
    }
  }
  if (wu <= 0.0) {
    return 0.0;
  }
  return score / wu;
}

double FmsApx::Apx(const TokenizedTuple& u, const TokenizedTuple& v) const {
  return Eval(u, v, /*with_token=*/false);
}

double FmsApx::TApx(const TokenizedTuple& u, const TokenizedTuple& v) const {
  return Eval(u, v, /*with_token=*/true);
}

}  // namespace fuzzymatch

// Figure 10 (dataset D2): fraction of input tuples for which optimistic
// short circuiting succeeded vs failed, per strategy. The paper reports
// 50%-75% success, increasing with signature size (more q-grams
// distinguish similarity scores better).

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  const DatasetSpec spec = WithInputs(DatasetD2(), env.num_inputs);
  std::printf("Figure 10 — OSC success and failure fractions (dataset D2, "
              "|R| = %zu, %zu inputs)\n\n",
              env.ref_size, env.num_inputs);
  PrintRow({"Strategy", "success", "failure", "attempted"});

  for (const EtiParams& params : PaperStrategies()) {
    FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
    FM_ASSIGN_OR_RETURN(
        const std::vector<InputTuple> inputs,
        GenerateInputs(env.customers, spec, &matcher->weights()));
    FM_ASSIGN_OR_RETURN(const EvalResult result, Evaluate(*matcher, inputs));
    const AggregateStats& s = result.stats;
    const double q = static_cast<double>(s.queries);
    PrintRow({params.StrategyName(),
              StringPrintf("%.2f", s.osc_succeeded / q),
              StringPrintf("%.2f", (q - s.osc_succeeded) / q),
              StringPrintf("%.2f", s.osc_attempted / q)});
  }
  std::printf("\nExpected shape (paper): success fraction between 0.50 and "
              "0.75 and generally\nincreasing with signature size.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_osc");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

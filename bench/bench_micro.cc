// Google-benchmark microbenchmarks for the primitives the fuzzy match
// pipeline is built from: hashing, edit distance, q-grams, min-hash, the
// token-sequence DP, ETI lookups, and the storage engine's hot paths.

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/md5.h"
#include "common/random.h"
#include "core/fuzzy_match.h"
#include "eti/eti_builder.h"
#include "storage/key_codec.h"
#include "gen/customer_gen.h"
#include "match/eti_matcher.h"
#include "sim/fms.h"
#include "storage/database.h"
#include "storage/external_sort.h"
#include "support/bench_env.h"
#include "text/edit_distance.h"
#include "text/minhash.h"
#include "text/qgram.h"

namespace fuzzymatch {
namespace {

std::string RandomWord(Rng& rng, size_t len) {
  std::string w(len, 'a');
  for (auto& c : w) {
    c = static_cast<char>('a' + rng.Uniform(26));
  }
  return w;
}

void BM_Hash64(benchmark::State& state) {
  Rng rng(1);
  const std::string s = RandomWord(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(s, 42));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Hash64)->Arg(8)->Arg(64)->Arg(1024);

void BM_Md5(benchmark::State& state) {
  Rng rng(2);
  const std::string s = RandomWord(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(s));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(16)->Arg(64);

void BM_Levenshtein(benchmark::State& state) {
  Rng rng(3);
  const std::string a = RandomWord(rng, static_cast<size_t>(state.range(0)));
  const std::string b = RandomWord(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(6)->Arg(12)->Arg(24)->Arg(64);

void BM_BoundedLevenshtein(benchmark::State& state) {
  Rng rng(4);
  const std::string a = RandomWord(rng, 24);
  std::string b = a;
  b[3] = '!';
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedLevenshtein(a, b, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(2)->Arg(8);

void BM_QGramSet(benchmark::State& state) {
  Rng rng(5);
  const std::string s = RandomWord(rng, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QGramSet(s, 4));
  }
}
BENCHMARK(BM_QGramSet);

void BM_MinHashSignature(benchmark::State& state) {
  Rng rng(6);
  const MinHasher hasher(4, static_cast<int>(state.range(0)), 9);
  const std::string s = RandomWord(rng, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(s));
  }
}
BENCHMARK(BM_MinHashSignature)->Arg(1)->Arg(3)->Arg(8);

void BM_FmsTupleSimilarity(benchmark::State& state) {
  const IdfWeights weights = IdfWeights::Builder().Finish();
  const FmsSimilarity fms(&weights);
  const Tokenizer tok;
  const auto u = tok.TokenizeTuple(
      Row{std::string("beoing company intl"), std::string("seattle"),
          std::string("wa"), std::string("98004")});
  const auto v = tok.TokenizeTuple(
      Row{std::string("boeing company international"),
          std::string("seattle"), std::string("wa"), std::string("98004")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fms.Similarity(u, v));
  }
}
BENCHMARK(BM_FmsTupleSimilarity);

/// Shared heavyweight fixture: 20k-row relation + Q+T_2 ETI.
struct MatchFixture {
  MatchFixture() {
    auto db_or = Database::Open(DatabaseOptions{.path = "",
                                                .pool_pages = 32 * 1024});
    db = std::move(*db_or);
    auto table = db->CreateTable("customers",
                                 CustomerGenerator::CustomerSchema());
    ref = *table;
    CustomerGenOptions gen_options;
    gen_options.num_tuples = 20000;
    CustomerGenerator generator(gen_options);
    (void)generator.Populate(ref);
    FuzzyMatchConfig config;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    auto matcher_or = FuzzyMatcher::Build(db.get(), "customers", config);
    matcher = std::move(*matcher_or);
  }

  static MatchFixture& Get() {
    static MatchFixture fixture;
    return fixture;
  }

  std::unique_ptr<Database> db;
  Table* ref = nullptr;
  std::unique_ptr<FuzzyMatcher> matcher;
};

void BM_EtiLookup(benchmark::State& state) {
  MatchFixture& f = MatchFixture::Get();
  const Eti& eti = f.matcher->eti();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eti.Lookup("company", 0, 0));
  }
}
BENCHMARK(BM_EtiLookup);

void BM_FuzzyMatchQuery(benchmark::State& state) {
  MatchFixture& f = MatchFixture::Get();
  auto row = f.ref->Get(123);
  Row dirty = *row;
  (*dirty[0])[1] = 'x';
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.matcher->FindMatches(dirty));
  }
}
BENCHMARK(BM_FuzzyMatchQuery);

void BM_TableGet(benchmark::State& state) {
  MatchFixture& f = MatchFixture::Get();
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.ref->Get(static_cast<Tid>(rng.Uniform(20000))));
  }
}
BENCHMARK(BM_TableGet);

void BM_BTreeInsert(benchmark::State& state) {
  auto pager = Pager::OpenInMemory();
  BufferPool pool(pager.get(), 4096);
  auto tree = BPlusTree::Create(&pool);
  Rng rng(9);
  uint64_t i = 0;
  for (auto _ : state) {
    KeyEncoder enc;
    enc.AppendU64(Mix64(i++));
    benchmark::DoNotOptimize(tree->Put(enc.key(), "value"));
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_ExternalSort(benchmark::State& state) {
  Rng rng(10);
  std::vector<std::string> records;
  for (int i = 0; i < 10000; ++i) {
    records.push_back(RandomWord(rng, 24));
  }
  for (auto _ : state) {
    ExternalSorter::Options options;
    options.memory_budget_bytes = 1u << 20;
    ExternalSorter sorter(options);
    for (const auto& r : records) {
      (void)sorter.Add(r);
    }
    auto stream = sorter.Finish();
    std::string rec;
    size_t n = 0;
    while (*(*stream)->Next(&rec)) {
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_ExternalSort);

}  // namespace
}  // namespace fuzzymatch

// BENCHMARK_MAIN expanded so the metrics registry is dumped on exit like
// every other harness.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fuzzymatch::bench::DumpMetrics("bench_micro");
  return 0;
}

// bench_lookup_path: the DESIGN.md 5i lookup-path ablation. One ETI is
// built and persisted once; each variant (scalar | simd | learned)
// re-opens it and runs
//
//   1. the raw probe loop — every [QGram, Coordinate, Column] key a
//      sample of reference tuples generates, probed through LookupInto;
//      timed per pass, with a posting-heavy subset (frequency >= 16)
//      reported separately (dense tid-lists are where the SIMD decode
//      pays);
//   2. end-to-end FindMatches over a dirty input dataset — per-query
//      p50/p95 latency;
//
// and cross-checks every variant's matches against the scalar baseline
// tid-for-tid and bit-for-bit on similarity (the standing byte-identical
// contract; tools/ci.sh lookupcheck repeats the check through the CLI).
// Heap allocations per timed probe pass are reported via the global
// alloc counter: steady-state probe loops must not allocate.
//
// Scale knobs: FM_REF_SIZE, FM_NUM_INPUTS (bench_env.h), FM_PASSES.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "eti/signature.h"
#include "obs/metrics.h"
#include "support/alloc_counter.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ProbeKey {
  std::string gram;
  uint32_t coordinate = 0;
  uint32_t column = 0;
};

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size())));
  return values[idx];
}

struct VariantReport {
  double probe_p50_ns = 0.0;   // per probe, all keys
  double probe_p95_ns = 0.0;
  double heavy_p50_ns = 0.0;   // per probe, posting-heavy keys
  double heavy_p95_ns = 0.0;
  double query_p50_ms = 0.0;
  double query_p95_ms = 0.0;
  double allocs_per_pass = 0.0;
  uint64_t checksum = 0;       // anti-DCE; must agree across variants
};

/// Times `passes` probe loops over `keys` and returns per-probe seconds
/// of each pass (after one untimed warmup pass that faults everything
/// resident and grows the scratch to its steady-state capacity).
std::vector<double> TimeProbePasses(const Eti& eti,
                                    const std::vector<ProbeKey>& keys,
                                    size_t passes, uint64_t* checksum,
                                    double* allocs_per_pass) {
  EtiScratch scratch;
  uint64_t sum = 0;
  for (const ProbeKey& key : keys) {  // warmup
    auto view = eti.LookupInto(key.gram, key.coordinate, key.column,
                               &scratch);
    if (view.ok() && view->found) sum += view->frequency;
  }
  std::vector<double> per_probe_s;
  per_probe_s.reserve(passes);
  const uint64_t allocs_before = AllocationCount();
  for (size_t p = 0; p < passes; ++p) {
    const double t0 = Now();
    for (const ProbeKey& key : keys) {
      auto view = eti.LookupInto(key.gram, key.coordinate, key.column,
                                 &scratch);
      if (view.ok() && view->found) {
        sum += view->frequency;
        for (size_t i = 0; i < view->num_tids; ++i) {
          sum += view->tids[i];
        }
      }
    }
    per_probe_s.push_back((Now() - t0) /
                          static_cast<double>(keys.size()));
  }
  *allocs_per_pass =
      static_cast<double>(AllocationCount() - allocs_before) /
      static_cast<double>(passes);
  *checksum += sum;
  return per_probe_s;
}

Status RunBench() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                      GenerateInputs(env.customers,
                                     WithInputs(DatasetD2(), env.num_inputs),
                                     nullptr));
  const size_t passes = EnvSize("FM_PASSES", 9);

  // Build (and persist) the index once; every variant re-opens it.
  FuzzyMatchConfig base_config;
  base_config.eti.signature_size = 3;
  base_config.eti.index_tokens = true;
  ApplyHotPathEnvOverrides(&base_config);
  const std::string strategy = base_config.eti.StrategyName();
  {
    auto built = FuzzyMatcher::Build(env.db.get(), "customers", base_config);
    FM_RETURN_IF_ERROR(built.status());
  }

  std::printf("bench_lookup_path: |R|=%zu inputs=%zu passes=%zu\n",
              env.ref_size, inputs.size(), passes);

  // The probe corpus: every key the first 200 reference tuples generate
  // (the exact keys FindMatches would probe for clean versions of them).
  std::vector<ProbeKey> all_keys;
  std::vector<ProbeKey> heavy_keys;
  {
    FM_ASSIGN_OR_RETURN(auto probe_matcher,
                        FuzzyMatcher::Open(env.db.get(), "customers",
                                           strategy, base_config));
    const Eti& eti = probe_matcher->eti();
    const Tokenizer tokenizer = eti.MakeTokenizer();
    const MinHasher hasher = eti.MakeHasher();
    Table::Scanner scanner = env.customers->Scan();
    Tid tid;
    Row row;
    size_t seen = 0;
    for (;;) {
      FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
      if (!more || seen++ >= 200) break;
      const TokenizedTuple tokens = tokenizer.TokenizeTuple(row);
      for (uint32_t col = 0; col < tokens.size(); ++col) {
        for (const auto& token : tokens[col]) {
          for (const auto& tc :
               MakeTokenCoordinates(hasher, eti.params(), token, 1.0)) {
            all_keys.push_back({tc.gram, tc.coordinate, col});
          }
        }
      }
    }
    EtiScratch scratch;
    for (const ProbeKey& key : all_keys) {
      auto view = eti.LookupInto(key.gram, key.coordinate, key.column,
                                 &scratch);
      if (view.ok() && view->found && view->frequency >= 16) {
        heavy_keys.push_back(key);
      }
    }
    if (heavy_keys.size() < 64) {
      heavy_keys = all_keys;  // tiny FM_REF_SIZE: no dense lists to split
    }
  }
  std::printf("probe corpus: %zu keys (%zu posting-heavy)\n\n",
              all_keys.size(), heavy_keys.size());

  auto& reg = obs::MetricsRegistry::Global();
  PrintRow({"variant", "probe_p50ns", "probe_p95ns", "heavy_p50ns",
            "heavy_p95ns", "query_p50ms", "query_p95ms", "allocs/pass"});

  const LookupPath variants[] = {LookupPath::kScalar, LookupPath::kSimd,
                                 LookupPath::kLearned};
  VariantReport reports[3];
  std::vector<std::vector<Match>> baseline;  // scalar results
  for (size_t v = 0; v < 3; ++v) {
    FuzzyMatchConfig config = base_config;
    config.lookup_path = variants[v];
    FM_ASSIGN_OR_RETURN(auto matcher,
                        FuzzyMatcher::Open(env.db.get(), "customers",
                                           strategy, config));
    const Eti& eti = matcher->eti();
    VariantReport& report = reports[v];

    const std::vector<double> all_pass = TimeProbePasses(
        eti, all_keys, passes, &report.checksum, &report.allocs_per_pass);
    report.probe_p50_ns = Quantile(all_pass, 0.50) * 1e9;
    report.probe_p95_ns = Quantile(all_pass, 0.95) * 1e9;
    double heavy_allocs = 0.0;
    const std::vector<double> heavy_pass = TimeProbePasses(
        eti, heavy_keys, passes, &report.checksum, &heavy_allocs);
    report.heavy_p50_ns = Quantile(heavy_pass, 0.50) * 1e9;
    report.heavy_p95_ns = Quantile(heavy_pass, 0.95) * 1e9;

    // End-to-end queries, checked against the scalar baseline.
    std::vector<double> query_s;
    query_s.reserve(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      const double t0 = Now();
      FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                          matcher->FindMatches(inputs[i].dirty));
      query_s.push_back(Now() - t0);
      if (v == 0) {
        baseline.push_back(matches);
      } else {
        const std::vector<Match>& expect = baseline[i];
        if (matches.size() != expect.size()) {
          return Status::Internal(StringPrintf(
              "%s diverged from scalar on input %zu: %zu vs %zu matches",
              LookupPathName(variants[v]), i, matches.size(),
              expect.size()));
        }
        for (size_t m = 0; m < matches.size(); ++m) {
          if (matches[m].tid != expect[m].tid ||
              matches[m].similarity != expect[m].similarity) {
            return Status::Internal(StringPrintf(
                "%s diverged from scalar on input %zu match %zu",
                LookupPathName(variants[v]), i, m));
          }
        }
      }
    }
    report.query_p50_ms = Quantile(query_s, 0.50) * 1e3;
    report.query_p95_ms = Quantile(query_s, 0.95) * 1e3;

    const char* name = LookupPathName(variants[v]);
    PrintRow({name, StringPrintf("%.1f", report.probe_p50_ns),
              StringPrintf("%.1f", report.probe_p95_ns),
              StringPrintf("%.1f", report.heavy_p50_ns),
              StringPrintf("%.1f", report.heavy_p95_ns),
              StringPrintf("%.3f", report.query_p50_ms),
              StringPrintf("%.3f", report.query_p95_ms),
              StringPrintf("%.1f", report.allocs_per_pass)});
    const std::string prefix = std::string("lookup_path.") + name;
    reg.GetGauge(prefix + ".probe_p50_ns")->Set(report.probe_p50_ns);
    reg.GetGauge(prefix + ".probe_p95_ns")->Set(report.probe_p95_ns);
    reg.GetGauge(prefix + ".heavy_p50_ns")->Set(report.heavy_p50_ns);
    reg.GetGauge(prefix + ".heavy_p95_ns")->Set(report.heavy_p95_ns);
    reg.GetGauge(prefix + ".query_p50_ms")->Set(report.query_p50_ms);
    reg.GetGauge(prefix + ".query_p95_ms")->Set(report.query_p95_ms);
    reg.GetGauge(prefix + ".allocs_per_pass")->Set(report.allocs_per_pass);
  }

  if (reports[0].checksum != reports[1].checksum ||
      reports[0].checksum != reports[2].checksum) {
    return Status::Internal("probe-loop checksums diverged across variants");
  }

  const double heavy_reduction =
      reports[0].heavy_p50_ns > 0.0
          ? 100.0 * (reports[0].heavy_p50_ns - reports[1].heavy_p50_ns) /
                reports[0].heavy_p50_ns
          : 0.0;
  std::printf(
      "\nsimd vs scalar: %.1f%% p50 probe reduction on posting-heavy keys\n"
      "all variants byte-identical on %zu queries (checksum %llu)\n",
      heavy_reduction, inputs.size(),
      static_cast<unsigned long long>(reports[0].checksum));
  reg.GetGauge("lookup_path.simd_vs_scalar_heavy_p50_reduction_pct")
      ->Set(heavy_reduction);
  DumpMetrics("bench_lookup_path");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = RunBench();
  if (!status.ok()) {
    std::fprintf(stderr, "bench_lookup_path: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Section 4.4.1: the token-frequency cache. Reports the memory footprint
// of the three cache designs over the reference relation's tokens, and —
// what the paper leaves unmeasured — the accuracy impact of the
// "cache with collisions" as its bucket budget shrinks (collisions
// inflate frequencies, deflating IDF weights of the colliding tokens).

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  const size_t inputs_wanted = std::min<size_t>(env.num_inputs, 400);
  const DatasetSpec spec = WithInputs(DatasetD2(), inputs_wanted);

  std::printf("Token-frequency cache designs (Section 4.4.1), |R| = %zu\n\n",
              env.ref_size);
  PrintRow({"Cache", "entries", "bytes", "accuracy"});

  struct Config {
    const char* label;
    FrequencyCacheKind kind;
    size_t buckets;
  };
  const Config configs[] = {
      {"exact", FrequencyCacheKind::kExact, 0},
      {"md5", FrequencyCacheKind::kMd5, 0},
      {"bounded-1M", FrequencyCacheKind::kBounded, 1u << 20},
      {"bounded-64K", FrequencyCacheKind::kBounded, 1u << 16},
      {"bounded-4K", FrequencyCacheKind::kBounded, 1u << 12},
      {"bounded-256", FrequencyCacheKind::kBounded, 256},
  };

  for (const Config& config : configs) {
    FuzzyMatchConfig fm_config;
    fm_config.eti.signature_size = 2;
    fm_config.eti.index_tokens = true;
    // Give each variant its own ETI namespace by varying the seed-neutral
    // strategy name via q? Strategies collide by name, so use a fresh
    // database per cache kind instead.
    FM_ASSIGN_OR_RETURN(auto db, Database::Open(DatabaseOptions{
                                     .path = "", .pool_pages = 64 * 1024}));
    FM_ASSIGN_OR_RETURN(
        Table * ref,
        db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
    CustomerGenOptions gen_options;
    gen_options.num_tuples = env.ref_size;
    CustomerGenerator generator(gen_options);
    FM_RETURN_IF_ERROR(generator.Populate(ref));

    fm_config.cache_kind = config.kind;
    fm_config.bounded_cache_buckets = config.buckets;
    FM_ASSIGN_OR_RETURN(auto matcher,
                        FuzzyMatcher::Build(db.get(), "customers",
                                            fm_config));
    FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                        GenerateInputs(ref, spec, &matcher->weights()));
    size_t correct = 0;
    for (const InputTuple& input : inputs) {
      FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                          matcher->FindMatches(input.dirty));
      correct += (!matches.empty() && matches[0].tid == input.seed_tid);
    }
    const TokenFrequencyCache& cache = matcher->weights().cache();
    PrintRow({config.label, StringPrintf("%zu", cache.EntryCount()),
              StringPrintf("%zu", cache.ApproxBytes()),
              StringPrintf("%.1f%%",
                           100.0 * correct / static_cast<double>(
                                                 inputs.size()))});
  }
  std::printf("\nExpected shape: md5 matches exact accuracy at a smaller "
              "footprint (the paper's\n24-byte-per-token estimate); "
              "bounded caches trade memory for accuracy, degrading\nas "
              "collisions increase.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_freq_cache");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Shared environment for the experiment harnesses: a seeded synthetic
// Customer reference relation, dataset generation, and result-table
// printing helpers. Scale is controlled by environment variables so the
// same binaries run as quick smoke checks or full paper-scale sweeps:
//   FM_REF_SIZE    reference relation cardinality (default 100000)
//   FM_NUM_INPUTS  input tuples per dataset (default 1655, as the paper)
//   FM_ACCEL_BUDGET_MB  ETI read-accelerator budget in MiB (0 disables)
//   FM_TUPLE_CACHE_MB   verified-tuple cache budget in MiB (0 disables)
//   FM_BUILD_THREADS    ETI build parallelism (1 = serial, 0 = all cores)
//   FM_LOOKUP_PATH      lookup-path variant: scalar | simd | learned

#ifndef FUZZYMATCH_BENCH_SUPPORT_BENCH_ENV_H_
#define FUZZYMATCH_BENCH_SUPPORT_BENCH_ENV_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/fuzzy_match.h"
#include "gen/customer_gen.h"
#include "gen/dataset.h"
#include "storage/database.h"

namespace fuzzymatch {
namespace bench {

/// Reads a size_t environment override.
size_t EnvSize(const char* name, size_t fallback);

/// An in-memory database populated with the synthetic Customer relation.
struct BenchEnv {
  std::unique_ptr<Database> db;
  Table* customers = nullptr;
  size_t ref_size = 0;
  size_t num_inputs = 0;
};

/// Builds the standard bench environment (deterministic; honours
/// FM_REF_SIZE / FM_NUM_INPUTS).
Result<BenchEnv> MakeBenchEnv();

/// Applies `num_inputs` to a dataset spec.
DatasetSpec WithInputs(DatasetSpec spec, size_t num_inputs);

/// The paper's seven signature strategies in Figure 5/6 order:
/// Q+T_0, Q_1, Q+T_1, Q_2, Q+T_2, Q_3, Q+T_3 (with the given q).
std::vector<EtiParams> PaperStrategies(int q = 4);

/// Fraction of inputs whose seed tid is among the returned matches.
double Accuracy(const std::vector<InputTuple>& inputs,
                const std::vector<std::vector<Match>>& results);

/// Prints one aligned row of a results table.
void PrintRow(const std::vector<std::string>& cells);

/// Applies the hot-path acceleration overrides (DESIGN.md 5d) so every
/// harness measures the accelerated vs B-tree-only paths from the same
/// binary: FM_ACCEL_BUDGET_MB and FM_TUPLE_CACHE_MB (0 disables each),
/// FM_BUILD_THREADS, and FM_LOOKUP_PATH (scalar|simd|learned).
void ApplyHotPathEnvOverrides(FuzzyMatchConfig* config);

/// Builds a FuzzyMatcher over env.customers with the given index strategy
/// and query options (hot-path env overrides applied).
Result<std::unique_ptr<FuzzyMatcher>> BuildStrategy(
    BenchEnv& env, const EtiParams& params,
    const MatcherOptions& matcher_options = {});

/// Outcome of running one input dataset through one matcher.
struct EvalResult {
  double accuracy = 0.0;       // seed recovered as (one of) the closest
  AggregateStats stats;        // totals over the dataset's queries
};

/// Runs every input through the matcher (resets aggregate stats first).
Result<EvalResult> Evaluate(FuzzyMatcher& matcher,
                            const std::vector<InputTuple>& inputs);

/// Seconds the naive algorithm needs to process ONE input tuple (the
/// paper's unit of normalized elapsed time), averaged over a few probes.
Result<double> NaiveProbeSeconds(BenchEnv& env, const IdfWeights& weights,
                                 size_t probes = 3);

/// Writes the process-wide metrics registry as JSON to
/// $FM_METRICS_DIR/<bench_name>.metrics.json (FM_METRICS_DIR defaults to
/// bench_results/, created if missing). Every bench harness calls this
/// on exit so runs share one diffable schema of the system's own
/// counters; failures are logged and swallowed (metrics never fail a
/// bench).
void DumpMetrics(const std::string& bench_name);

}  // namespace bench
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_BENCH_SUPPORT_BENCH_ENV_H_

#include "support/bench_env.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/logging.h"
#include "fault/failpoint.h"
#include "match/naive_matcher.h"
#include "obs/metrics.h"

namespace fuzzymatch {
namespace bench {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) {
    FM_LOG(Warning) << "ignoring unparsable " << name << "=" << v;
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

Result<BenchEnv> MakeBenchEnv() {
  if (fault::kEnabled) {
    FM_LOG(Warning) << "failpoints are compiled in (-DFM_FAILPOINTS=ON): "
                       "numbers from this binary are not comparable to "
                       "Release results";
  }
  BenchEnv env;
  env.ref_size = EnvSize("FM_REF_SIZE", 100000);
  env.num_inputs = EnvSize("FM_NUM_INPUTS", 1655);

  DatabaseOptions db_options;
  db_options.pool_pages = 64 * 1024;  // 512 MiB of 8 KiB frames, in memory
  FM_ASSIGN_OR_RETURN(env.db, Database::Open(db_options));

  CustomerGenOptions gen_options;
  gen_options.num_tuples = env.ref_size;
  CustomerGenerator generator(gen_options);
  FM_ASSIGN_OR_RETURN(
      env.customers,
      env.db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
  FM_RETURN_IF_ERROR(generator.Populate(env.customers));
  return env;
}

DatasetSpec WithInputs(DatasetSpec spec, size_t num_inputs) {
  spec.num_inputs = num_inputs;
  return spec;
}

std::vector<EtiParams> PaperStrategies(int q) {
  std::vector<EtiParams> out;
  for (const int h : {0, 1, 2, 3}) {
    for (const bool tokens : {false, true}) {
      if (h == 0 && !tokens) {
        continue;  // Q_0 indexes nothing
      }
      EtiParams p;
      p.q = q;
      p.signature_size = h;
      p.index_tokens = tokens;
      out.push_back(p);
    }
  }
  // Paper order: Q+T_0, Q_1, Q+T_1, Q_2, Q+T_2, Q_3, Q+T_3 — already the
  // natural order of the loop above.
  return out;
}

double Accuracy(const std::vector<InputTuple>& inputs,
                const std::vector<std::vector<Match>>& results) {
  FM_CHECK_EQ(inputs.size(), results.size());
  if (inputs.empty()) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (const Match& m : results[i]) {
      if (m.tid == inputs[i].seed_tid) {
        ++correct;
        break;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

void ApplyHotPathEnvOverrides(FuzzyMatchConfig* config) {
  config->accel_memory_bytes =
      EnvSize("FM_ACCEL_BUDGET_MB", config->accel_memory_bytes >> 20) << 20;
  config->matcher.tuple_cache_bytes =
      EnvSize("FM_TUPLE_CACHE_MB",
              config->matcher.tuple_cache_bytes >> 20)
      << 20;
  config->build_threads = static_cast<int>(EnvSize(
      "FM_BUILD_THREADS", static_cast<size_t>(config->build_threads)));
  const char* path = std::getenv("FM_LOOKUP_PATH");
  if (path != nullptr && *path != '\0') {
    const Result<LookupPath> parsed = ParseLookupPath(path);
    if (parsed.ok()) {
      config->lookup_path = *parsed;
    } else {
      FM_LOG(Warning) << "ignoring FM_LOOKUP_PATH=" << path << ": "
                      << parsed.status();
    }
  }
}

Result<std::unique_ptr<FuzzyMatcher>> BuildStrategy(
    BenchEnv& env, const EtiParams& params,
    const MatcherOptions& matcher_options) {
  FuzzyMatchConfig config;
  config.eti = params;
  config.matcher = matcher_options;
  ApplyHotPathEnvOverrides(&config);
  return FuzzyMatcher::Build(env.db.get(), "customers", config);
}

Result<EvalResult> Evaluate(FuzzyMatcher& matcher,
                            const std::vector<InputTuple>& inputs) {
  matcher.ResetAggregateStats();
  size_t correct = 0;
  for (const InputTuple& input : inputs) {
    FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                        matcher.FindMatches(input.dirty));
    for (const Match& m : matches) {
      if (m.tid == input.seed_tid) {
        ++correct;
        break;
      }
    }
  }
  EvalResult result;
  result.accuracy = inputs.empty() ? 0.0
                                   : static_cast<double>(correct) /
                                         static_cast<double>(inputs.size());
  result.stats = matcher.aggregate_stats();
  return result;
}

Result<double> NaiveProbeSeconds(BenchEnv& env, const IdfWeights& weights,
                                 size_t probes) {
  auto table = env.db->GetTable("customers");
  if (!table.ok()) return table.status();
  NaiveMatcher naive(*table, &weights, NaiveMatcher::SimilarityKind::kFms,
                     MatcherOptions{});
  FM_RETURN_IF_ERROR(naive.Prepare());
  // Probe with dirty versions of arbitrary reference tuples.
  DatasetSpec spec = DatasetD2();
  spec.num_inputs = probes;
  spec.seed = 4242;
  FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                      GenerateInputs(*table, spec, nullptr));
  double total = 0.0;
  for (const InputTuple& input : inputs) {
    QueryStats stats;
    FM_RETURN_IF_ERROR(naive.FindMatches(input.dirty, &stats).status());
    total += stats.elapsed_seconds;
  }
  return total / static_cast<double>(inputs.size());
}

void DumpMetrics(const std::string& bench_name) {
  const char* dir_env = std::getenv("FM_METRICS_DIR");
  const std::string dir =
      (dir_env != nullptr && *dir_env != '\0') ? dir_env : "bench_results";
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    FM_LOG(Warning) << "metrics dump: cannot create " << dir << ": "
                    << std::strerror(errno);
    return;
  }
  const std::string path = dir + "/" + bench_name + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    FM_LOG(Warning) << "metrics dump: cannot write " << path;
    return;
  }
  out << obs::MetricsRegistry::Global().RenderJson();
  FM_LOG(Info) << "metrics dumped to " << path;
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-14s", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace fuzzymatch

#include "support/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr legally; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  return p;
}

}  // namespace

namespace fuzzymatch {
namespace bench {

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace bench
}  // namespace fuzzymatch

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// Process-wide heap-allocation counter for the bench harnesses: linking
// this TU replaces global operator new/delete with malloc/free wrappers
// that bump a relaxed atomic, so a bench can report allocations-per-query
// and catch hot-path regressions (the scratch-reuse contract of
// DESIGN.md 5i is "zero steady-state allocations in the probe loop").
//
// Intentionally bench-only: the wrappers are linked into bench binaries
// through fm_bench_support, never into the library targets, so shipped
// code paths are unchanged. Over-aligned allocations keep the library
// default operators (a consistent pair) and are not counted.

#ifndef FUZZYMATCH_BENCH_SUPPORT_ALLOC_COUNTER_H_
#define FUZZYMATCH_BENCH_SUPPORT_ALLOC_COUNTER_H_

#include <cstdint>

namespace fuzzymatch {
namespace bench {

/// Global operator new/new[] calls since process start (all threads).
uint64_t AllocationCount();

}  // namespace bench
}  // namespace fuzzymatch

#endif  // FUZZYMATCH_BENCH_SUPPORT_ALLOC_COUNTER_H_

// Scaling sweep (beyond the paper, which fixes |R| = 1.7M): how build
// cost, index size, query latency and accuracy move with the reference
// cardinality, for the Q+T_3 strategy on D2-grade inputs. The paper's
// asymptotics (Section 4.4) predict build ~ O(|R|) and query latency
// growing only through tid-list lengths.

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  const size_t num_inputs = EnvSize("FM_NUM_INPUTS", 400);
  std::printf("Scaling sweep — Q+T_3, D2 errors, %zu inputs per point\n\n",
              num_inputs);
  PrintRow({"|R|", "build(s)", "ETI rows", "accuracy", "tids/in", "ms/in"});

  for (const size_t ref_size : {10000u, 30000u, 100000u, 300000u}) {
    FM_ASSIGN_OR_RETURN(auto db, Database::Open(DatabaseOptions{
                                     .path = "", .pool_pages = 96 * 1024}));
    FM_ASSIGN_OR_RETURN(
        Table * ref,
        db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
    CustomerGenOptions gen_options;
    gen_options.num_tuples = ref_size;
    CustomerGenerator generator(gen_options);
    FM_RETURN_IF_ERROR(generator.Populate(ref));

    FuzzyMatchConfig config;
    config.eti.signature_size = 3;
    config.eti.index_tokens = true;
    FM_ASSIGN_OR_RETURN(auto matcher,
                        FuzzyMatcher::Build(db.get(), "customers", config));

    DatasetSpec spec = DatasetD2();
    spec.num_inputs = num_inputs;
    FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                        GenerateInputs(ref, spec, &matcher->weights()));
    size_t correct = 0;
    for (const InputTuple& input : inputs) {
      FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                          matcher->FindMatches(input.dirty));
      correct += (!matches.empty() && matches[0].tid == input.seed_tid);
    }
    const AggregateStats& s = matcher->aggregate_stats();
    PrintRow({StringPrintf("%zu", ref_size),
              StringPrintf("%.2f", matcher->build_stats().total_seconds),
              StringPrintf("%llu",
                           static_cast<unsigned long long>(
                               matcher->build_stats().eti_rows)),
              StringPrintf("%.1f%%",
                           100.0 * correct / static_cast<double>(
                                                 inputs.size())),
              StringPrintf("%.0f",
                           static_cast<double>(s.tids_processed) / s.queries),
              StringPrintf("%.3f",
                           1e3 * s.elapsed_seconds / s.queries)});
  }
  std::printf("\nExpected shape: near-linear build time and index size; "
              "per-query latency grows\nsublinearly (tid-lists lengthen, "
              "but OSC still terminates after the heavy\nq-grams); "
              "accuracy dips slowly as the space of confusable neighbors "
              "densifies.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_scaling");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Ablations of the design choices DESIGN.md calls out, on dataset D2 with
// the Q+T_2 strategy as the baseline:
//   - OSC on/off (how much work the short circuit saves);
//   - new-tid admission filter on/off (hash-table size effect; only
//     visible when the similarity threshold c > 0);
//   - conservative (adjustment-inclusive) bounds on/off;
//   - stop q-gram threshold sweep;
//   - token transposition operation in fms on/off;
//   - token insertion factor c_ins sweep.

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

struct Variant {
  std::string label;
  EtiParams eti;
  MatcherOptions matcher;
};

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  const size_t inputs_wanted = std::min<size_t>(env.num_inputs, 600);
  const DatasetSpec spec = WithInputs(DatasetD2(), inputs_wanted);

  EtiParams base_eti;
  base_eti.signature_size = 2;
  base_eti.index_tokens = true;
  MatcherOptions base_matcher;

  std::vector<Variant> variants;
  variants.push_back({"baseline Q+T_2", base_eti, base_matcher});
  {
    Variant v{"no OSC", base_eti, base_matcher};
    v.matcher.use_osc = false;
    variants.push_back(v);
  }
  {
    Variant v{"tight bounds", base_eti, base_matcher};
    v.matcher.bound_policy = MatcherOptions::BoundPolicy::kTight;
    variants.push_back(v);
  }
  {
    Variant v{"conservative bounds", base_eti, base_matcher};
    v.matcher.bound_policy = MatcherOptions::BoundPolicy::kConservative;
    variants.push_back(v);
  }
  {
    Variant v{"c=0.5 with admission", base_eti, base_matcher};
    v.matcher.min_similarity = 0.5;
    variants.push_back(v);
  }
  {
    Variant v{"c=0.5 no admission", base_eti, base_matcher};
    v.matcher.min_similarity = 0.5;
    v.matcher.admission_filter = false;
    variants.push_back(v);
  }
  {
    Variant v{"stop threshold 500", base_eti, base_matcher};
    v.eti.stop_qgram_threshold = 500;
    variants.push_back(v);
  }
  {
    Variant v{"stop threshold 100", base_eti, base_matcher};
    v.eti.stop_qgram_threshold = 100;
    variants.push_back(v);
  }
  {
    Variant v{"fms transpositions", base_eti, base_matcher};
    v.matcher.fms.enable_transposition = true;
    variants.push_back(v);
  }
  {
    Variant v{"cins=0.1", base_eti, base_matcher};
    v.matcher.fms.cins = 0.1;
    variants.push_back(v);
  }
  {
    Variant v{"cins=1.0", base_eti, base_matcher};
    v.matcher.fms.cins = 1.0;
    variants.push_back(v);
  }

  std::printf("Ablations on D2 with Q+T_2 (|R| = %zu, %zu inputs)\n\n",
              env.ref_size, inputs_wanted);
  PrintRow({"Variant", "accuracy", "fetch/in", "tids/in", "table/in",
            "osc-ok", "ms/in"});

  // Each variant may alter the ETI, so each gets a fresh database.
  for (const Variant& variant : variants) {
    FM_ASSIGN_OR_RETURN(auto db, Database::Open(DatabaseOptions{
                                     .path = "", .pool_pages = 64 * 1024}));
    FM_ASSIGN_OR_RETURN(
        Table * ref,
        db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
    CustomerGenOptions gen_options;
    gen_options.num_tuples = env.ref_size;
    CustomerGenerator generator(gen_options);
    FM_RETURN_IF_ERROR(generator.Populate(ref));

    FuzzyMatchConfig config;
    config.eti = variant.eti;
    config.matcher = variant.matcher;
    FM_ASSIGN_OR_RETURN(auto matcher,
                        FuzzyMatcher::Build(db.get(), "customers", config));
    FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                        GenerateInputs(ref, spec, &matcher->weights()));
    FM_ASSIGN_OR_RETURN(const EvalResult result, Evaluate(*matcher, inputs));
    const AggregateStats& s = result.stats;
    const double q = static_cast<double>(s.queries);
    PrintRow({variant.label,
              StringPrintf("%.1f%%", 100 * result.accuracy),
              StringPrintf("%.2f", s.ref_tuples_fetched / q),
              StringPrintf("%.0f", s.tids_processed / q),
              StringPrintf("%.0f", s.hash_table_size / q),
              StringPrintf("%.2f", s.osc_succeeded / q),
              StringPrintf("%.3f", 1e3 * s.elapsed_seconds / q)});
  }
  std::printf("\nReading guide: 'no OSC' shows the lookup/fetch work OSC "
              "avoids; 'conservative\nbounds' shows the cost of the "
              "strictly-safe Lemma 4.2 slack; the admission pair\nshows "
              "step 9b shrinking the score table when c > 0; aggressive "
              "stop thresholds\ntrade accuracy for smaller tid-lists; "
              "transpositions and c_ins shift fms itself.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_ablation");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Figure 6: normalized elapsed time — the time to fuzzy match ALL input
// tuples of a dataset divided by the time the naive algorithm needs for
// ONE input tuple. A value below the input count means the indexed
// algorithm beats the naive scan; the paper reports < 2.5 for every
// strategy on 1655 inputs, i.e. 2-3 orders of magnitude speedup.
//
// Expected shapes (paper): times fall as H grows; Q+T_H beats Q_H.
//
// Trace-overhead mode: FM_TRACE_OVERHEAD=1 skips the figure and instead
// A/B-measures request tracing (span tree + flight recorder) against the
// untraced path on one strategy, interleaving trials to cancel drift. It
// writes bench_query_time.trace_overhead.json next to the metrics dump
// and fails when the median overhead exceeds FM_TRACE_BUDGET_PCT
// (default 5%). The CI obscheck stage runs this mode.

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

double Median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

Status RunTraceOverhead() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  const EtiParams params = PaperStrategies().back();  // Q+T_3, the default
  FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
  FM_ASSIGN_OR_RETURN(
      const std::vector<InputTuple> inputs,
      GenerateInputs(env.customers,
                     WithInputs(DatasetD2(), env.num_inputs),
                     &matcher->weights()));

  // Warm the buffer pool and code paths before timing anything.
  obs::SetTracingEnabled(false);
  FM_RETURN_IF_ERROR(Evaluate(*matcher, inputs).status());

  // Interleave off/on trials so clock drift and cache effects hit both
  // sides equally; the median of three absorbs a stray outlier.
  double off[3], on[3];
  for (int trial = 0; trial < 3; ++trial) {
    obs::SetTracingEnabled(false);
    FM_ASSIGN_OR_RETURN(const EvalResult base, Evaluate(*matcher, inputs));
    off[trial] = base.stats.elapsed_seconds;
    obs::SetTracingEnabled(true);
    FM_ASSIGN_OR_RETURN(const EvalResult traced, Evaluate(*matcher, inputs));
    on[trial] = traced.stats.elapsed_seconds;
  }
  obs::SetTracingEnabled(true);

  const double median_off = Median3(off[0], off[1], off[2]);
  const double median_on = Median3(on[0], on[1], on[2]);
  const double overhead_pct =
      median_off > 0 ? (median_on - median_off) / median_off * 100.0 : 0.0;
  const char* budget_env = std::getenv("FM_TRACE_BUDGET_PCT");
  const double budget_pct =
      (budget_env != nullptr && *budget_env != '\0')
          ? std::strtod(budget_env, nullptr)
          : 5.0;
  const obs::FlightRecorder::Stats recorder =
      obs::FlightRecorder::Global().GetStats();

  const double per_query_us =
      inputs.empty() ? 0.0
                     : (median_on - median_off) /
                           static_cast<double>(inputs.size()) * 1e6;
  std::printf(
      "trace overhead: %zu queries x3 trials\n"
      "  tracing off median: %.4fs   tracing on median: %.4fs\n"
      "  overhead: %+.2f%% (%.2fus/query), budget %.1f%%\n"
      "  recorder: %llu traces recorded\n",
      inputs.size(), median_off, median_on, overhead_pct, per_query_us,
      budget_pct, static_cast<unsigned long long>(recorder.recorded));

  const char* dir_env = std::getenv("FM_METRICS_DIR");
  const std::string dir =
      (dir_env != nullptr && *dir_env != '\0') ? dir_env : "bench_results";
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create " + dir + ": " +
                           std::strerror(errno));
  }
  const std::string path = dir + "/bench_query_time.trace_overhead.json";
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot write " + path);
  }
  out << StringPrintf(
      "{\"queries\": %zu, \"trials\": 3, "
      "\"median_off_seconds\": %.6f, \"median_on_seconds\": %.6f, "
      "\"overhead_pct\": %.4f, \"per_query_overhead_us\": %.4f, "
      "\"budget_pct\": %.2f, \"within_budget\": %s, "
      "\"traces_recorded\": %llu}\n",
      inputs.size(), median_off, median_on, overhead_pct, per_query_us,
      budget_pct, overhead_pct <= budget_pct ? "true" : "false",
      static_cast<unsigned long long>(recorder.recorded));
  std::printf("trace overhead report written to %s\n", path.c_str());

  if (overhead_pct > budget_pct) {
    return Status::Internal(StringPrintf(
        "tracing overhead %.2f%% exceeds budget %.1f%%", overhead_pct,
        budget_pct));
  }
  return Status::OK();
}

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());

  const std::vector<DatasetSpec> datasets = {
      WithInputs(DatasetD1(), env.num_inputs),
      WithInputs(DatasetD2(), env.num_inputs),
      WithInputs(DatasetD3(), env.num_inputs)};

  double naive_probe = 0.0;
  PrintRow({"Strategy", "D1", "D2", "D3"});
  std::vector<std::vector<std::string>> rows;
  for (const EtiParams& params : PaperStrategies()) {
    FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
    if (naive_probe == 0.0) {
      // One measurement is enough; it does not depend on the strategy.
      FM_ASSIGN_OR_RETURN(naive_probe,
                          NaiveProbeSeconds(env, matcher->weights()));
    }
    std::vector<std::string> cells = {params.StrategyName()};
    for (const DatasetSpec& spec : datasets) {
      FM_ASSIGN_OR_RETURN(
          const std::vector<InputTuple> inputs,
          GenerateInputs(env.customers, spec, &matcher->weights()));
      FM_ASSIGN_OR_RETURN(const EvalResult result,
                          Evaluate(*matcher, inputs));
      cells.push_back(
          StringPrintf("%.2f", result.stats.elapsed_seconds / naive_probe));
    }
    PrintRow(cells);
    rows.push_back(std::move(cells));
  }

  std::printf("\nFigure 6 — normalized elapsed time for %zu inputs "
              "(|R| = %zu).\nOne naive probe takes %.3fs; a normalized "
              "value v means the whole dataset was\nprocessed in the time "
              "the naive algorithm needs for v inputs.\n",
              env.num_inputs, env.ref_size, naive_probe);
  std::printf("Expected shape (paper): all values a few units (vs %zu "
              "inputs => 2-3 orders of\nmagnitude faster than naive); "
              "decreasing with H; Q+T_H < Q_H.\n",
              env.num_inputs);
  return Status::OK();
}

}  // namespace

int main() {
  const char* overhead_env = std::getenv("FM_TRACE_OVERHEAD");
  const bool overhead_mode =
      overhead_env != nullptr && *overhead_env != '\0' &&
      std::strcmp(overhead_env, "0") != 0;
  const Status status = overhead_mode ? RunTraceOverhead() : Run();
  DumpMetrics("bench_query_time");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

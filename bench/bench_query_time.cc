// Figure 6: normalized elapsed time — the time to fuzzy match ALL input
// tuples of a dataset divided by the time the naive algorithm needs for
// ONE input tuple. A value below the input count means the indexed
// algorithm beats the naive scan; the paper reports < 2.5 for every
// strategy on 1655 inputs, i.e. 2-3 orders of magnitude speedup.
//
// Expected shapes (paper): times fall as H grows; Q+T_H beats Q_H.

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());

  const std::vector<DatasetSpec> datasets = {
      WithInputs(DatasetD1(), env.num_inputs),
      WithInputs(DatasetD2(), env.num_inputs),
      WithInputs(DatasetD3(), env.num_inputs)};

  double naive_probe = 0.0;
  PrintRow({"Strategy", "D1", "D2", "D3"});
  std::vector<std::vector<std::string>> rows;
  for (const EtiParams& params : PaperStrategies()) {
    FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
    if (naive_probe == 0.0) {
      // One measurement is enough; it does not depend on the strategy.
      FM_ASSIGN_OR_RETURN(naive_probe,
                          NaiveProbeSeconds(env, matcher->weights()));
    }
    std::vector<std::string> cells = {params.StrategyName()};
    for (const DatasetSpec& spec : datasets) {
      FM_ASSIGN_OR_RETURN(
          const std::vector<InputTuple> inputs,
          GenerateInputs(env.customers, spec, &matcher->weights()));
      FM_ASSIGN_OR_RETURN(const EvalResult result,
                          Evaluate(*matcher, inputs));
      cells.push_back(
          StringPrintf("%.2f", result.stats.elapsed_seconds / naive_probe));
    }
    PrintRow(cells);
    rows.push_back(std::move(cells));
  }

  std::printf("\nFigure 6 — normalized elapsed time for %zu inputs "
              "(|R| = %zu).\nOne naive probe takes %.3fs; a normalized "
              "value v means the whole dataset was\nprocessed in the time "
              "the naive algorithm needs for v inputs.\n",
              env.num_inputs, env.ref_size, naive_probe);
  std::printf("Expected shape (paper): all values a few units (vs %zu "
              "inputs => 2-3 orders of\nmagnitude faster than naive); "
              "decreasing with H; Q+T_H < Q_H.\n",
              env.num_inputs);
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_query_time");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

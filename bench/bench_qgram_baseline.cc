// ETI vs the full q-gram table baseline (Section 2's comparison point,
// after Gravano et al., VLDB 2001): the ETI stores only H min-hash-chosen
// q-grams per token, the baseline stores them all. This bench
// substantiates the paper's size claim — "the ETI is smaller than a full
// q-gram table because we only select (probabilistically) a subset of all
// q-grams per tuple" — and shows what that subset costs and buys at query
// time (dataset D2).

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  const size_t inputs_wanted = std::min<size_t>(env.num_inputs, 600);
  const DatasetSpec spec = WithInputs(DatasetD2(), inputs_wanted);

  std::vector<EtiParams> strategies;
  for (const int h : {1, 2, 3}) {
    EtiParams p;
    p.signature_size = h;
    strategies.push_back(p);
  }
  {
    EtiParams p;
    p.signature_size = 3;
    p.index_tokens = true;
    strategies.push_back(p);
  }
  {
    EtiParams full;
    full.full_qgram_index = true;
    strategies.push_back(full);
  }

  std::printf("ETI vs full q-gram table (|R| = %zu, D2, %zu inputs)\n\n",
              env.ref_size, inputs_wanted);
  PrintRow({"Index", "pre-rows", "ETI rows", "build(s)", "accuracy",
            "tids/in", "ms/in"});

  for (const EtiParams& params : strategies) {
    FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
    FM_ASSIGN_OR_RETURN(
        const std::vector<InputTuple> inputs,
        GenerateInputs(env.customers, spec, &matcher->weights()));
    FM_ASSIGN_OR_RETURN(const EvalResult result, Evaluate(*matcher, inputs));
    const EtiBuildStats& b = matcher->build_stats();
    const AggregateStats& s = result.stats;
    PrintRow({params.StrategyName(),
              StringPrintf("%llu",
                           static_cast<unsigned long long>(b.pre_eti_rows)),
              StringPrintf("%llu",
                           static_cast<unsigned long long>(b.eti_rows)),
              StringPrintf("%.2f", b.total_seconds),
              StringPrintf("%.1f%%", 100 * result.accuracy),
              StringPrintf("%.0f",
                           static_cast<double>(s.tids_processed) / s.queries),
              StringPrintf("%.3f",
                           1e3 * s.elapsed_seconds / s.queries)});
  }
  std::printf("\nExpected shape: FULLQG posts several times more pre-ETI "
              "rows and a larger, slower\nindex for an accuracy edge of a "
              "few points at most — the trade the ETI's\nprobabilistic "
              "subset is designed to win (Section 2).\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_qgram_baseline");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Quantitative experiments for the Section 5 extensions, which the paper
// describes without measuring:
//   §5.2 column weights — when one column's content is known-unreliable
//        (here: zip codes corrupted with probability 0.9), down-weighting
//        it should recover accuracy;
//   §5.3 token transpositions — on a transposition-heavy error stream the
//        transposition operation should pay off;
//   K    — the K-fuzzy-match recall/latency trade (how often the true
//        seed is within the top K).

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Result<std::vector<InputTuple>> MakeInputs(Table* ref,
                                           const DatasetSpec& spec) {
  return GenerateInputs(ref, spec, nullptr);
}

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  const size_t inputs_wanted = std::min<size_t>(env.num_inputs, 600);

  EtiParams eti;
  eti.signature_size = 2;
  eti.index_tokens = true;
  // One shared index for all three experiments (strategy names are unique
  // per database).
  FM_ASSIGN_OR_RETURN(auto shared, BuildStrategy(env, eti));

  // ---- §5.2: column weights under an unreliable zip column. ----
  {
    DatasetSpec spec = DatasetD2();
    spec.name = "zip-noise";
    spec.column_error_prob = {0.4, 0.2, 0.2, 1.0};
    spec.num_inputs = inputs_wanted;

    FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                        MakeInputs(env.customers, spec));
    FM_ASSIGN_OR_RETURN(const EvalResult base, Evaluate(*shared, inputs));

    MatcherOptions weighted_options;
    weighted_options.fms.column_weights = {1.0, 1.0, 1.0, 0.1};
    const EtiMatcher weighted(env.customers, &shared->eti(),
                              &shared->weights(), weighted_options);
    size_t correct = 0;
    for (const InputTuple& input : inputs) {
      FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                          weighted.FindMatches(input.dirty));
      correct += (!matches.empty() && matches[0].tid == input.seed_tid);
    }
    std::printf("S5.2 column weights (zip column corrupted with p=1.0, %zu "
                "inputs):\n",
                inputs.size());
    PrintRow({"  weights", "accuracy"});
    PrintRow({"  uniform", StringPrintf("%.1f%%", 100 * base.accuracy)});
    PrintRow({"  zip x0.1",
              StringPrintf("%.1f%%",
                           100.0 * correct / static_cast<double>(
                                                 inputs.size()))});
    std::printf("\n");
  }

  // ---- §5.3: transpositions on a transposition-heavy stream. ----
  {
    DatasetSpec spec = DatasetD2();
    spec.name = "transposition-heavy";
    spec.num_inputs = inputs_wanted;
    // All error mass on token transposition + spelling.
    ErrorModelOptions model;
    model.column_error_prob = spec.column_error_prob;
    model.type_probs_name = {0.3, 0.0, 0.0, 0.0, 0.0, 0.7};
    model.type_probs_other = {0.3, 0.0, 0.0, 0.0, 0.0, 0.7};
    const ErrorInjector injector(model);
    Rng rng(606);
    std::vector<InputTuple> inputs;
    for (size_t i = 0; i < inputs_wanted; ++i) {
      const Tid tid =
          static_cast<Tid>(rng.Uniform(env.customers->row_count()));
      FM_ASSIGN_OR_RETURN(const Row clean, env.customers->Get(tid));
      inputs.push_back(InputTuple{injector.Inject(clean, rng), tid});
    }

    // The transposition operation's first-order effect is on the
    // similarity VALUE assigned to the true target (a swap costs one
    // g(w1,w2) instead of delete+insert at 1.5x weight) — which matters
    // wherever a load threshold is applied (Figure 1's template).
    const Tokenizer tokenizer = shared->eti().MakeTokenizer();
    auto stats_with = [&](bool transpositions) -> Result<std::pair<double, double>> {
      MatcherOptions options;
      options.fms.enable_transposition = transpositions;
      const FmsSimilarity fms(&shared->weights(), options.fms);
      const EtiMatcher m(env.customers, &shared->eti(),
                         &shared->weights(), options);
      size_t correct = 0;
      double sim_sum = 0;
      for (const InputTuple& input : inputs) {
        FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                            m.FindMatches(input.dirty));
        correct += (!matches.empty() && matches[0].tid == input.seed_tid);
        FM_ASSIGN_OR_RETURN(const Row seed,
                            env.customers->Get(input.seed_tid));
        sim_sum += fms.Similarity(tokenizer.TokenizeTuple(input.dirty),
                                  tokenizer.TokenizeTuple(seed));
      }
      return std::make_pair(
          static_cast<double>(correct) / static_cast<double>(inputs.size()),
          sim_sum / static_cast<double>(inputs.size()));
    };
    FM_ASSIGN_OR_RETURN(const auto without, stats_with(false));
    FM_ASSIGN_OR_RETURN(const auto with, stats_with(true));
    std::printf("S5.3 token transpositions (70%% of errors are adjacent "
                "swaps, %zu inputs):\n",
                inputs.size());
    PrintRow({"  fms variant", "accuracy", "fms(u,seed)"});
    PrintRow({"  plain", StringPrintf("%.1f%%", 100 * without.first),
              StringPrintf("%.3f", without.second)});
    PrintRow({"  +transposition", StringPrintf("%.1f%%", 100 * with.first),
              StringPrintf("%.3f", with.second)});
    std::printf("\n");
  }

  // ---- K sweep: recall@K and latency. ----
  {
    DatasetSpec spec = DatasetD1();  // the dirtiest dataset
    spec.num_inputs = inputs_wanted;
    FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                        MakeInputs(env.customers, spec));
    std::printf("K-fuzzy-match sweep (dataset D1, %zu inputs):\n",
                inputs.size());
    PrintRow({"  K", "recall@K", "ms/input"});
    for (const size_t k : {1u, 3u, 5u, 10u}) {
      MatcherOptions options;
      options.k = k;
      const EtiMatcher m(env.customers, &shared->eti(),
                         &shared->weights(), options);
      size_t hit = 0;
      for (const InputTuple& input : inputs) {
        FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                            m.FindMatches(input.dirty));
        for (const Match& match : matches) {
          if (match.tid == input.seed_tid) {
            ++hit;
            break;
          }
        }
      }
      const AggregateStats& s = m.aggregate_stats();
      PrintRow({StringPrintf("  %zu", k),
                StringPrintf("%.1f%%",
                             100.0 * hit / static_cast<double>(
                                               inputs.size())),
                StringPrintf("%.3f",
                             1e3 * s.elapsed_seconds / s.queries)});
    }
    std::printf("\nExpected: recall grows with K (the seed is often 2nd or "
                "3rd under heavy\ncorruption) at modest extra latency — "
                "the paper's motivation for returning\nthe closest K and "
                "letting users choose.\n");
  }
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_extensions");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

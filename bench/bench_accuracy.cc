// Figure 5: accuracy of the signature strategies Q+T_0, Q_1, Q+T_1, Q_2,
// Q+T_2, Q_3, Q+T_3 on datasets D1, D2, D3 (Table 5 error profiles,
// Type I injection; paper: 1655 inputs, q=4, K=1, c=0).
//
// Expected shapes (paper):
//   (i)   Q_H (H>0) beats Q+T_0 (tokens only) by 5-25 points;
//   (ii)  Q+T_H is about as accurate as Q_H;
//   (iii) accuracy grows Q_1 -> Q_2 but flattens by Q_3;
//   (iv)  cleaner datasets score higher (D3 > D2 > D1).

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  std::printf("Figure 5 — accuracy per strategy and dataset "
              "(|R| = %zu, %zu inputs per dataset)\n\n",
              env.ref_size, env.num_inputs);

  const std::vector<DatasetSpec> datasets = {
      WithInputs(DatasetD1(), env.num_inputs),
      WithInputs(DatasetD2(), env.num_inputs),
      WithInputs(DatasetD3(), env.num_inputs)};

  PrintRow({"Strategy", "D1", "D2", "D3"});
  for (const EtiParams& params : PaperStrategies()) {
    FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
    std::vector<std::string> cells = {params.StrategyName()};
    for (const DatasetSpec& spec : datasets) {
      FM_ASSIGN_OR_RETURN(
          const std::vector<InputTuple> inputs,
          GenerateInputs(env.customers, spec, &matcher->weights()));
      FM_ASSIGN_OR_RETURN(const EvalResult result,
                          Evaluate(*matcher, inputs));
      cells.push_back(StringPrintf("%.1f%%", 100 * result.accuracy));
    }
    PrintRow(cells);
  }
  std::printf("\nExpected shape (paper): Q_H and Q+T_H (H>=1) comparable "
              "and 5-25 points above\nQ+T_0; little gain past H=2; D3 >= "
              "D2 >= D1.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_accuracy");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

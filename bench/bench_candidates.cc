// Figures 8 and 9 (dataset D2):
//   Figure 8 — average number of reference tuples fetched per input
//   tuple, split by whether optimistic short circuiting succeeded (the
//   paper: ~1 fetch when OSC succeeds, far more when it fails; totals
//   fall as the signature grows).
//   Figure 9 — average number of tids processed (scored) per input tuple
//   (the paper: thousands, growing with signature size, more for Q+T_H).

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  const DatasetSpec spec = WithInputs(DatasetD2(), env.num_inputs);
  std::printf("Figures 8 & 9 — candidate fetches and tids processed per "
              "input tuple\n(dataset D2, |R| = %zu, %zu inputs)\n\n",
              env.ref_size, env.num_inputs);
  PrintRow({"Strategy", "fetch/input", "osc-ok", "osc-fail", "no-osc",
            "tids/input", "lookups"});

  for (const EtiParams& params : PaperStrategies()) {
    FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
    FM_ASSIGN_OR_RETURN(
        const std::vector<InputTuple> inputs,
        GenerateInputs(env.customers, spec, &matcher->weights()));
    FM_ASSIGN_OR_RETURN(const EvalResult result, Evaluate(*matcher, inputs));
    const AggregateStats& s = result.stats;
    const double ok_queries = static_cast<double>(s.osc_succeeded);
    // Only queries where the fetching test fired and the stopping test
    // then refuted the optimistic result; queries that never attempted
    // OSC are a separate population (the paper's Figure 8 split).
    const double fail_queries =
        static_cast<double>(s.osc_attempted - s.osc_succeeded);
    const double no_osc_queries =
        static_cast<double>(s.queries - s.osc_attempted);
    PrintRow({params.StrategyName(),
              StringPrintf("%.2f", static_cast<double>(s.ref_tuples_fetched) /
                                       s.queries),
              ok_queries > 0
                  ? StringPrintf("%.2f",
                                 s.fetched_when_osc_succeeded / ok_queries)
                  : "-",
              fail_queries > 0
                  ? StringPrintf("%.2f",
                                 s.fetched_when_osc_failed / fail_queries)
                  : "-",
              no_osc_queries > 0
                  ? StringPrintf(
                        "%.2f", s.fetched_when_osc_not_attempted /
                                    no_osc_queries)
                  : "-",
              StringPrintf("%.0f",
                           static_cast<double>(s.tids_processed) / s.queries),
              StringPrintf("%.1f",
                           static_cast<double>(s.eti_lookups) / s.queries)});
  }
  std::printf("\nExpected shapes (paper): total fetches per input decrease "
              "with signature size\n(Fig 8); OSC-success fetches stay near "
              "1 while OSC-failure fetches are much\nlarger; tids "
              "processed per input grow with signature size (Fig 9) but "
              "are more\nthan compensated by the smaller candidate "
              "sets.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_candidates");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// WAL durability bench (DESIGN.md 5j): durable maintenance throughput
// under the three fsync policies, and log-replay recovery speed over a
// crash snapshot taken mid-session. Archives the wal.* counter family
// plus its own gauges via DumpMetrics, so CI's walcheck stage keeps a
// diffable record of the group-commit and recovery costs.
//
//   FM_REF_SIZE     reference relation cardinality (default 3000)
//   FM_MAINT_OPS    maintenance ops per fsync mode (default 200)

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "storage/wal.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

std::string TempDbPath(const char* tag) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/bench_wal_" +
         tag + "_" + std::to_string(::getpid()) + ".db";
}

void RemoveWithWal(const std::string& path) {
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".wal");
}

Status Run() {
  const size_t ref_size = EnvSize("FM_REF_SIZE", 3000);
  const size_t maint_ops = EnvSize("FM_MAINT_OPS", 200);
  std::printf("WAL durability — |R| = %zu, %zu maintenance ops per mode\n\n",
              ref_size, maint_ops);
  PrintRow({"fsync mode", "ops/s", "commits", "fsyncs", "log MiB"});

  auto& registry = obs::MetricsRegistry::Global();
  std::string replay_snapshot;  // crash snapshot from the kGroup run

  for (const WalFsyncMode mode :
       {WalFsyncMode::kAlways, WalFsyncMode::kGroup, WalFsyncMode::kNever}) {
    const std::string name(WalFsyncModeName(mode));
    const std::string path = TempDbPath(name.c_str());
    RemoveWithWal(path);

    DatabaseOptions options;
    options.path = path;
    options.wal_fsync = mode;
    FM_ASSIGN_OR_RETURN(auto db, Database::Open(options));
    {
      FM_ASSIGN_OR_RETURN(
          Table * customers,
          db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
      CustomerGenOptions gen_options;
      gen_options.num_tuples = ref_size;
      CustomerGenerator gen(gen_options);
      FM_RETURN_IF_ERROR(gen.Populate(customers));
    }
    FuzzyMatchConfig config;
    config.eti.signature_size = 2;
    config.eti.index_tokens = true;
    ApplyHotPathEnvOverrides(&config);
    FM_ASSIGN_OR_RETURN(auto matcher,
                        FuzzyMatcher::Build(db.get(), "customers", config));
    // Start the measured window from a truncated log.
    FM_RETURN_IF_ERROR(db->Checkpoint());

    const uint64_t commits0 = registry.GetCounter("wal.commits")->value();
    const uint64_t fsyncs0 = registry.GetCounter("wal.fsyncs")->value();
    Timer timer;
    for (size_t i = 0; i < maint_ops; ++i) {
      Row row{"walbench " + std::to_string(i) + " inc",
              std::string("renton"), std::string("wa"), std::string("98055")};
      FM_ASSIGN_OR_RETURN(Tid tid, matcher->InsertReferenceTuple(row));
      if (i % 4 == 3) {
        FM_RETURN_IF_ERROR(matcher->RemoveReferenceTuple(tid));
      }
    }
    FM_RETURN_IF_ERROR(db->FlushWal());
    const double seconds = timer.ElapsedSeconds();
    const double ops_per_s = static_cast<double>(maint_ops) / seconds;
    const uint64_t commits = registry.GetCounter("wal.commits")->value()
                             - commits0;
    const uint64_t fsyncs = registry.GetCounter("wal.fsyncs")->value()
                            - fsyncs0;
    const double log_mib =
        static_cast<double>(std::filesystem::file_size(path + ".wal")) /
        (1024.0 * 1024.0);
    registry.GetGauge("bench_wal.maint_ops_per_s_" + name)->Set(ops_per_s);
    PrintRow({name, StringPrintf("%.0f", ops_per_s),
              StringPrintf("%llu", static_cast<unsigned long long>(commits)),
              StringPrintf("%llu", static_cast<unsigned long long>(fsyncs)),
              StringPrintf("%.1f", log_mib)});

    if (mode == WalFsyncMode::kGroup) {
      // A crash snapshot: main file as-is (dirty pages unflushed), log as
      // fsynced. Opening the copy must replay every committed op.
      replay_snapshot = TempDbPath("replay");
      RemoveWithWal(replay_snapshot);
      std::filesystem::copy_file(path, replay_snapshot);
      std::filesystem::copy_file(path + ".wal", replay_snapshot + ".wal");
    }
    db.reset();
    RemoveWithWal(path);
  }

  if (!replay_snapshot.empty()) {
    DatabaseOptions options;
    options.path = replay_snapshot;
    Timer timer;
    FM_ASSIGN_OR_RETURN(auto db, Database::Open(options));
    const double seconds = timer.ElapsedSeconds();
    const Wal::ReplayStats& replay = db->replay_stats();
    registry.GetGauge("bench_wal.replay_seconds")->Set(seconds);
    registry.GetGauge("bench_wal.replay_pages")
        ->Set(static_cast<double>(replay.pages_applied));
    std::printf("\nRecovery: replayed %llu commits / %llu pages in %.3fs "
                "(open-to-serving)\n",
                static_cast<unsigned long long>(replay.commits_applied),
                static_cast<unsigned long long>(replay.pages_applied),
                seconds);
    db.reset();
    RemoveWithWal(replay_snapshot);
  }

  std::printf("\nExpected shape: never > group > always in ops/s (each "
              "step removes fsync\nwaits); recovery cost scales with the "
              "committed log, not the database size.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_wal");
  if (!status.ok()) {
    std::fprintf(stderr, "bench_wal: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

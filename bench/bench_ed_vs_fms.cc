// Experiment of Section 6.2.1.1: accuracy of fms vs plain tuple edit
// distance under Type I and Type II error injection (error probabilities
// [0.90, 0.5, 0.5, 0.6], ~100 input tuples, naive matcher so only the
// similarity functions are compared).
//
// Paper's result (1.7M-tuple Customer relation):
//             fms    ed
//   Type I    69%    63%
//   Type II   95%    71%
// Expected shape: fms > ed on both, with a much larger gap on Type II
// (frequent tokens err more often; fms discounts them, ed does not).
//
// Scale knobs: FM_ED_REF_SIZE (default 20000; naive scans are O(|R|) per
// input) and FM_ED_NUM_INPUTS (default 100, as the paper).

#include <cstdio>

#include "common/string_util.h"
#include "match/naive_matcher.h"
#include "support/bench_env.h"
#include "text/tokenizer.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Result<IdfWeights> BuildWeights(Table* ref) {
  IdfWeights::Builder builder;
  const Tokenizer tokenizer;
  Table::Scanner scanner = ref->Scan();
  Tid tid;
  Row row;
  for (;;) {
    FM_ASSIGN_OR_RETURN(const bool more, scanner.Next(&tid, &row));
    if (!more) break;
    builder.AddTuple(tokenizer.TokenizeTuple(row));
  }
  return builder.Finish();
}

Result<double> NaiveAccuracy(Table* ref, const IdfWeights& weights,
                             NaiveMatcher::SimilarityKind kind,
                             const std::vector<InputTuple>& inputs) {
  NaiveMatcher matcher(ref, &weights, kind, MatcherOptions{});
  FM_RETURN_IF_ERROR(matcher.Prepare());
  size_t correct = 0;
  for (const InputTuple& input : inputs) {
    FM_ASSIGN_OR_RETURN(const std::vector<Match> matches,
                        matcher.FindMatches(input.dirty));
    correct += (!matches.empty() && matches[0].tid == input.seed_tid);
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

Status Run() {
  // This experiment compares similarity functions through the naive
  // matcher, so it uses its own (smaller) default scale.
  const size_t ref_size = EnvSize("FM_ED_REF_SIZE", 20000);
  const size_t num_inputs = EnvSize("FM_ED_NUM_INPUTS", 100);

  DatabaseOptions db_options;
  db_options.pool_pages = 64 * 1024;
  FM_ASSIGN_OR_RETURN(auto db, Database::Open(db_options));
  FM_ASSIGN_OR_RETURN(
      Table * ref,
      db->CreateTable("customers", CustomerGenerator::CustomerSchema()));
  CustomerGenOptions gen_options;
  gen_options.num_tuples = ref_size;
  CustomerGenerator generator(gen_options);
  FM_RETURN_IF_ERROR(generator.Populate(ref));
  FM_ASSIGN_OR_RETURN(const IdfWeights weights, BuildWeights(ref));

  std::printf("ed vs fms accuracy (Section 6.2.1.1): |R| = %zu, %zu "
              "inputs, error probs [0.90, 0.5, 0.5, 0.6]\n\n",
              ref_size, num_inputs);
  PrintRow({"Dataset", "fms", "ed"});

  for (DatasetSpec spec : {DatasetEdVsFmsTypeI(), DatasetEdVsFmsTypeII()}) {
    spec.num_inputs = num_inputs;
    FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                        GenerateInputs(ref, spec, &weights));
    FM_ASSIGN_OR_RETURN(
        const double fms_acc,
        NaiveAccuracy(ref, weights, NaiveMatcher::SimilarityKind::kFms,
                      inputs));
    FM_ASSIGN_OR_RETURN(
        const double ed_acc,
        NaiveAccuracy(ref, weights, NaiveMatcher::SimilarityKind::kEd,
                      inputs));
    PrintRow({spec.name, StringPrintf("%.0f%%", 100 * fms_acc),
              StringPrintf("%.0f%%", 100 * ed_acc)});
  }
  std::printf("\nExpected shape (paper): fms beats ed on both datasets, "
              "with a far larger\nmargin under Type II errors.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_ed_vs_fms");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// bench_serving: throughput and tail latency of the online serving
// subsystem (extra-paper; the paper's experiments are single-threaded
// batch runs, this measures the same operator behind MatchServer).
//
// Three sweeps:
//   1. in-process: CleanBatchParallel on the shared matcher — pure
//      query-path scaling, no sockets;
//   2. served: an in-process MatchServer on an ephemeral loopback port,
//      N closed-loop clients issuing `clean` requests — end-to-end
//      throughput and client-observed p50/p99;
//   3. sharded: the scatter/gather tier behind the same server at
//      1/2/4/8 shards (conservative bound policy, so every response is
//      byte-checked against the 1-shard serial run).
//
// Every served response is checked byte-for-byte against the serial
// CleanBatch rendering of the same input (zero result divergence), so
// the speedup numbers cannot come from wrong answers. Scaling is bounded
// by the machine: hardware_concurrency is printed next to the ratios.
//
// Scale knobs: FM_REF_SIZE, FM_NUM_INPUTS (bench_env.h), FM_MAX_WORKERS.

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/batch_cleaner.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"
#include "shard/sharded_matcher.h"
#include "support/alloc_counter.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string CleanRequestLine(const Row& row, uint64_t id) {
  std::string line = "{\"op\":\"clean\",\"id\":" + std::to_string(id) +
                     ",\"row\":[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line.push_back(',');
    if (row[i].has_value()) {
      server::AppendJsonString(*row[i], &line);
    } else {
      line += "null";
    }
  }
  line += "]}";
  return line;
}

struct ServedRun {
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t divergent = 0;
  uint64_t errors = 0;
};

double Quantile(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return (*latencies)[idx];
}

/// Runs `clients` closed-loop clients against `port`, each owning a
/// contiguous slice of the requests. `expected[i]` is the serial
/// response line for request id i.
Result<ServedRun> RunServedSweep(uint16_t port, size_t clients,
                                 const std::vector<std::string>& requests,
                                 const std::vector<std::string>& expected) {
  struct PerClient {
    std::vector<double> latencies_s;
    uint64_t divergent = 0;
    uint64_t errors = 0;
    Status fatal;
  };
  std::vector<PerClient> per_client(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const double start = Now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PerClient& mine = per_client[c];
      server::LineClient client;
      if (Status s = client.Connect("127.0.0.1", port); !s.ok()) {
        mine.fatal = std::move(s);
        return;
      }
      // Contiguous slice: request i checked against expected[i].
      const size_t begin = c * requests.size() / clients;
      const size_t end = (c + 1) * requests.size() / clients;
      mine.latencies_s.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        const double t0 = Now();
        auto response = client.Roundtrip(requests[i]);
        mine.latencies_s.push_back(Now() - t0);
        if (!response.ok()) {
          mine.fatal = response.status();
          return;
        }
        if (response->rfind("{\"ok\":true", 0) != 0) {
          ++mine.errors;
        } else if (*response != expected[i]) {
          ++mine.divergent;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  ServedRun run;
  run.seconds = Now() - start;
  std::vector<double> latencies;
  for (PerClient& pc : per_client) {
    FM_RETURN_IF_ERROR(pc.fatal);
    run.divergent += pc.divergent;
    run.errors += pc.errors;
    latencies.insert(latencies.end(), pc.latencies_s.begin(),
                     pc.latencies_s.end());
  }
  run.p50_ms = Quantile(&latencies, 0.50) * 1e3;
  run.p95_ms = Quantile(&latencies, 0.95) * 1e3;
  run.p99_ms = Quantile(&latencies, 0.99) * 1e3;
  return run;
}

Status RunBench() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  FM_ASSIGN_OR_RETURN(const std::vector<InputTuple> inputs,
                      GenerateInputs(env.customers,
                                     WithInputs(DatasetD2(), env.num_inputs),
                                     nullptr));

  FuzzyMatchConfig config;
  ApplyHotPathEnvOverrides(&config);
  FM_ASSIGN_OR_RETURN(auto matcher,
                      FuzzyMatcher::Build(env.db.get(), "customers", config));
  const BatchCleaner cleaner(matcher.get(), BatchCleaner::Options{});

  std::vector<Row> rows;
  rows.reserve(inputs.size());
  for (const InputTuple& input : inputs) {
    rows.push_back(input.dirty);
  }

  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t max_workers = EnvSize("FM_MAX_WORKERS", 4);
  std::vector<size_t> sweep;
  for (size_t w = 1; w <= max_workers; w *= 2) {
    sweep.push_back(w);
  }

  std::printf("bench_serving: |R|=%zu inputs=%zu hardware_concurrency=%zu\n",
              env.ref_size, rows.size(), hw);

  // Serial ground truth: outcomes, rendered response lines, and the
  // 1-thread batch time every ratio is against. The allocation counter
  // around it reports heap allocations per query — the scratch-reuse
  // regression check (DESIGN.md 5i): matcher hot loops reuse per-thread
  // buffers, so the steady-state number must stay small and flat.
  const uint64_t serial_allocs_before = AllocationCount();
  const double serial_start = Now();
  std::vector<std::string> expected(rows.size());
  std::vector<std::string> requests(rows.size());
  FM_RETURN_IF_ERROR(
      cleaner
          .CleanBatch(rows,
                      [&](size_t i, const CleanResult& r) -> Status {
                        std::string line = server::RenderCleanResponse(i, r);
                        line.pop_back();  // Roundtrip strips '\n'
                        expected[i] = std::move(line);
                        requests[i] = CleanRequestLine(rows[i], i);
                        return Status::OK();
                      })
          .status());
  const double serial_seconds = Now() - serial_start;
  const double serial_qps =
      static_cast<double>(rows.size()) / serial_seconds;
  const double serial_allocs_per_query =
      static_cast<double>(AllocationCount() - serial_allocs_before) /
      static_cast<double>(rows.size());
  std::printf("serial CleanBatch: %.3fs (%.0f q/s, %.1f allocs/query)\n\n",
              serial_seconds, serial_qps, serial_allocs_per_query);

  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("bench_serving.hardware_concurrency")
      ->Set(static_cast<double>(hw));
  reg.GetGauge("bench_serving.serial_qps")->Set(serial_qps);
  reg.GetGauge("bench_serving.serial_allocs_per_query")
      ->Set(serial_allocs_per_query);

  PrintRow({"mode", "workers", "seconds", "q/s", "vs-serial", "p50ms",
            "p95ms", "p99ms"});

  // Sweep 1: in-process parallel batch (no sockets). The per-worker
  // thread_local scratch means allocations/query should not grow with
  // worker count once each worker has warmed its buffers.
  for (const size_t w : sweep) {
    const uint64_t allocs_before = AllocationCount();
    const double t0 = Now();
    FM_ASSIGN_OR_RETURN(const CleanStats stats,
                        cleaner.CleanBatchParallel(rows, w));
    const double seconds = Now() - t0;
    const double qps = static_cast<double>(stats.processed) / seconds;
    const double allocs_per_query =
        static_cast<double>(AllocationCount() - allocs_before) /
        static_cast<double>(stats.processed);
    PrintRow({"in-process", std::to_string(w),
              StringPrintf("%.3f", seconds), StringPrintf("%.0f", qps),
              StringPrintf("%.2fx", qps / serial_qps),
              StringPrintf("%.1fa/q", allocs_per_query), "-", "-"});
    reg.GetGauge("bench_serving.inprocess_qps_w" + std::to_string(w))
        ->Set(qps);
    reg.GetGauge("bench_serving.inprocess_allocs_per_query_w" +
                 std::to_string(w))
        ->Set(allocs_per_query);
  }

  // Sweep 2: the full server over loopback, clients == workers.
  std::string tracez_snapshot;
  for (const size_t w : sweep) {
    server::ServerOptions options;
    options.workers = w;
    options.queue_capacity = 2 * w + 64;  // closed loop: no shedding
    server::MatchServer srv(matcher.get(), BatchCleaner::Options{}, options);
    FM_RETURN_IF_ERROR(srv.Start());
    FM_ASSIGN_OR_RETURN(const ServedRun run,
                        RunServedSweep(srv.port(), w, requests, expected));
    // Snapshot the flight recorder while the server is still live; the
    // widest sweep (last iteration) wins, so the archived traces come
    // from the most contended configuration.
    {
      server::LineClient probe;
      if (probe.Connect("127.0.0.1", srv.port()).ok()) {
        if (auto tracez = probe.Roundtrip("tracez 32"); tracez.ok()) {
          tracez_snapshot = std::move(*tracez);
        }
      }
    }
    srv.Shutdown();
    if (run.divergent > 0 || run.errors > 0) {
      return Status::Internal(StringPrintf(
          "served results diverged from serial: %llu divergent, %llu errors "
          "at %zu workers",
          static_cast<unsigned long long>(run.divergent),
          static_cast<unsigned long long>(run.errors), w));
    }
    const double qps = static_cast<double>(rows.size()) / run.seconds;
    PrintRow({"served", std::to_string(w),
              StringPrintf("%.3f", run.seconds), StringPrintf("%.0f", qps),
              StringPrintf("%.2fx", qps / serial_qps),
              StringPrintf("%.3f", run.p50_ms),
              StringPrintf("%.3f", run.p95_ms),
              StringPrintf("%.3f", run.p99_ms)});
    reg.GetGauge("bench_serving.served_qps_w" + std::to_string(w))->Set(qps);
    reg.GetGauge("bench_serving.served_p50_ms_w" + std::to_string(w))
        ->Set(run.p50_ms);
    reg.GetGauge("bench_serving.served_p95_ms_w" + std::to_string(w))
        ->Set(run.p95_ms);
    reg.GetGauge("bench_serving.served_p99_ms_w" + std::to_string(w))
        ->Set(run.p99_ms);
  }

  // Sweep 4 (run before the sharded sweep so it reuses the live
  // matcher): online ETI rebuild while serving (DESIGN.md 5j). Clients
  // hammer the query path in a closed loop while one admin connection
  // triggers `rebuild`; the swap must not drain them, and with no
  // concurrent maintenance every response — before, during, after —
  // must stay byte-identical to the serial ground truth.
  {
    server::ServerOptions options;
    options.workers = std::max<size_t>(2, max_workers);
    options.queue_capacity = 2 * options.workers + 64;
    options.rebuild_handler = [&matcher] { return matcher->RebuildEti(); };
    server::MatchServer srv(matcher.get(), BatchCleaner::Options{}, options);
    FM_RETURN_IF_ERROR(srv.Start());

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> answered{0};
    std::atomic<uint64_t> divergent{0};
    std::vector<std::thread> clients;
    for (size_t c = 0; c < 2; ++c) {
      clients.emplace_back([&, c] {
        server::LineClient client;
        if (!client.Connect("127.0.0.1", srv.port()).ok()) return;
        size_t i = c;
        while (!stop.load(std::memory_order_relaxed)) {
          const size_t idx = i++ % requests.size();
          auto response = client.Roundtrip(requests[idx]);
          if (!response.ok() || *response != expected[idx]) {
            divergent.fetch_add(1);
          }
          answered.fetch_add(1);
        }
      });
    }

    server::LineClient admin;
    FM_RETURN_IF_ERROR(admin.Connect("127.0.0.1", srv.port()));
    const double rebuild_start = Now();
    FM_ASSIGN_OR_RETURN(const std::string rebuilt,
                        admin.Roundtrip("rebuild"));
    const double rebuild_seconds = Now() - rebuild_start;
    stop.store(true);
    for (std::thread& t : clients) t.join();
    srv.Shutdown();
    if (rebuilt.rfind("{\"ok\":true", 0) != 0) {
      return Status::Internal("online rebuild failed: " + rebuilt);
    }
    if (divergent.load() > 0) {
      return Status::Internal(StringPrintf(
          "%llu responses diverged across the rebuild swap",
          static_cast<unsigned long long>(divergent.load())));
    }
    const double qps_during =
        static_cast<double>(answered.load()) / rebuild_seconds;
    std::printf("\nrebuild-while-serving: swap in %.3fs, %llu queries "
                "answered during it (%.0f q/s), 0 divergent\n\n",
                rebuild_seconds,
                static_cast<unsigned long long>(answered.load()),
                qps_during);
    reg.GetGauge("bench_serving.rebuild_seconds")->Set(rebuild_seconds);
    reg.GetGauge("bench_serving.rebuild_qps_during")->Set(qps_during);
    reg.GetGauge("bench_serving.rebuild_queries_during")
        ->Set(static_cast<double>(answered.load()));
  }

  // Sweep 3: the scatter/gather tier at 1/2/4/8 shards, served over
  // loopback like sweep 2. The byte-divergence check needs its own
  // serial ground truth under the conservative bound policy — the one
  // under which sharded output is provably byte-identical to a single
  // engine (DESIGN.md 5h); the 1-shard run provides it.
  FuzzyMatchConfig shard_config = config;
  shard_config.matcher.bound_policy =
      MatcherOptions::BoundPolicy::kConservative;
  std::vector<std::string> shard_expected(rows.size());
  double sharded_serial_qps = 0.0;
  for (const size_t num_shards : {1u, 2u, 4u, 8u}) {
    shard::ShardRouter::Options router_options;
    router_options.num_shards = num_shards;
    FM_ASSIGN_OR_RETURN(
        const auto router,
        shard::ShardRouter::Build(env.customers, shard_config,
                                  router_options));
    FM_ASSIGN_OR_RETURN(const auto sharded,
                        shard::ShardedMatcher::Create(
                            router.get(), shard::ShardedMatcher::Options{}));
    if (num_shards == 1) {
      const BatchCleaner shard_cleaner(sharded.get(),
                                       BatchCleaner::Options{});
      const double t0 = Now();
      FM_RETURN_IF_ERROR(
          shard_cleaner
              .CleanBatch(rows,
                          [&](size_t i, const CleanResult& r) -> Status {
                            std::string line =
                                server::RenderCleanResponse(i, r);
                            line.pop_back();
                            shard_expected[i] = std::move(line);
                            return Status::OK();
                          })
              .status());
      sharded_serial_qps =
          static_cast<double>(rows.size()) / (Now() - t0);
    }

    server::ServerOptions options;
    options.workers = max_workers;
    options.queue_capacity = 2 * max_workers + 64;
    server::MatchServer srv(sharded.get(), BatchCleaner::Options{},
                            options);
    FM_RETURN_IF_ERROR(srv.Start());
    FM_ASSIGN_OR_RETURN(
        const ServedRun run,
        RunServedSweep(srv.port(), max_workers, requests, shard_expected));
    // The archived flight-recorder snapshot comes from the widest shard
    // fan-out: those traces carry the shard[k] subtrees.
    {
      server::LineClient probe;
      if (probe.Connect("127.0.0.1", srv.port()).ok()) {
        if (auto tracez = probe.Roundtrip("tracez 32"); tracez.ok()) {
          tracez_snapshot = std::move(*tracez);
        }
      }
    }
    srv.Shutdown();
    if (run.divergent > 0 || run.errors > 0) {
      return Status::Internal(StringPrintf(
          "sharded served results diverged from the 1-shard serial run: "
          "%llu divergent, %llu errors at %zu shards",
          static_cast<unsigned long long>(run.divergent),
          static_cast<unsigned long long>(run.errors), num_shards));
    }
    const double qps = static_cast<double>(rows.size()) / run.seconds;
    PrintRow({"sharded", StringPrintf("s%zu", num_shards),
              StringPrintf("%.3f", run.seconds), StringPrintf("%.0f", qps),
              StringPrintf("%.2fx", qps / sharded_serial_qps),
              StringPrintf("%.3f", run.p50_ms),
              StringPrintf("%.3f", run.p95_ms),
              StringPrintf("%.3f", run.p99_ms)});
    const std::string suffix = "_s" + std::to_string(num_shards);
    reg.GetGauge("bench_serving.sharded_qps" + suffix)->Set(qps);
    reg.GetGauge("bench_serving.sharded_p50_ms" + suffix)->Set(run.p50_ms);
    reg.GetGauge("bench_serving.sharded_p99_ms" + suffix)->Set(run.p99_ms);
  }
  reg.GetGauge("bench_serving.sharded_serial_qps")->Set(sharded_serial_qps);

  if (!tracez_snapshot.empty()) {
    const char* dir_env = std::getenv("FM_METRICS_DIR");
    const std::string dir =
        (dir_env != nullptr && *dir_env != '\0') ? dir_env : "bench_results";
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      const std::string path = dir + "/bench_serving.tracez.json";
      std::ofstream tracez_out(path);
      if (tracez_out) {
        tracez_out << tracez_snapshot << "\n";
        std::printf("flight recorder snapshot written to %s\n", path.c_str());
      }
    }
  }

  std::printf(
      "\nall served responses byte-identical to the serial batch "
      "(zero divergence, sharded included)\n");
  if (hw < max_workers) {
    std::printf(
        "note: only %zu hardware thread(s); multi-worker and multi-shard "
        "ratios are concurrency-correctness runs, not speedups\n",
        hw);
  }
  DumpMetrics("bench_serving");
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = RunBench();
  if (!status.ok()) {
    std::fprintf(stderr, "bench_serving: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// Figure 7: normalized ETI building time per strategy — build time
// divided by the time of one naive probe. The paper reports < 7 for every
// strategy (D2's reference relation), concluding that the index pays off
// as soon as ~10 inputs must be matched; the exact ratio depends on the
// substrate, so treat the shape (Q+T_H > Q_H, growing with H, and a
// break-even after a handful of inputs) as the reproducible part.

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  std::printf("Figure 7 — ETI building time (|R| = %zu)\n\n", env.ref_size);
  PrintRow({"Strategy", "build(s)", "normalized", "pre-ETI", "ETI rows",
            "stop"});

  double naive_probe = 0.0;
  for (const EtiParams& params : PaperStrategies()) {
    FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
    if (naive_probe == 0.0) {
      FM_ASSIGN_OR_RETURN(naive_probe,
                          NaiveProbeSeconds(env, matcher->weights()));
    }
    const EtiBuildStats& stats = matcher->build_stats();
    PrintRow({params.StrategyName(),
              StringPrintf("%.2f", stats.total_seconds),
              StringPrintf("%.1f", stats.total_seconds / naive_probe),
              StringPrintf("%llu",
                           static_cast<unsigned long long>(
                               stats.pre_eti_rows)),
              StringPrintf("%llu",
                           static_cast<unsigned long long>(stats.eti_rows)),
              StringPrintf("%llu", static_cast<unsigned long long>(
                                       stats.stop_qgrams))});
  }
  std::printf("\nOne naive probe: %.3fs. Expected shape (paper): build "
              "cost grows with H and is\nhigher for Q+T_H than Q_H; the "
              "normalized cost amortizes after a small batch of\ninputs "
              "(paper: ~10; see bench_query_time for the per-input "
              "speedup).\n",
              naive_probe);
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_eti_build");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

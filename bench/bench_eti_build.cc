// Figure 7: normalized ETI building time per strategy — build time
// divided by the time of one naive probe. The paper reports < 7 for every
// strategy (D2's reference relation), concluding that the index pays off
// as soon as ~10 inputs must be matched; the exact ratio depends on the
// substrate, so treat the shape (Q+T_H > Q_H, growing with H, and a
// break-even after a handful of inputs) as the reproducible part.

#include <cstdio>

#include "common/string_util.h"
#include "support/bench_env.h"

using namespace fuzzymatch;
using namespace fuzzymatch::bench;

namespace {

Status Run() {
  FM_ASSIGN_OR_RETURN(BenchEnv env, MakeBenchEnv());
  std::printf("Figure 7 — ETI building time (|R| = %zu)\n\n", env.ref_size);
  PrintRow({"Strategy", "build(s)", "normalized", "pre-ETI", "ETI rows",
            "stop"});

  double naive_probe = 0.0;
  for (const EtiParams& params : PaperStrategies()) {
    FM_ASSIGN_OR_RETURN(auto matcher, BuildStrategy(env, params));
    if (naive_probe == 0.0) {
      FM_ASSIGN_OR_RETURN(naive_probe,
                          NaiveProbeSeconds(env, matcher->weights()));
    }
    const EtiBuildStats& stats = matcher->build_stats();
    PrintRow({params.StrategyName(),
              StringPrintf("%.2f", stats.total_seconds),
              StringPrintf("%.1f", stats.total_seconds / naive_probe),
              StringPrintf("%llu",
                           static_cast<unsigned long long>(
                               stats.pre_eti_rows)),
              StringPrintf("%llu",
                           static_cast<unsigned long long>(stats.eti_rows)),
              StringPrintf("%llu", static_cast<unsigned long long>(
                                       stats.stop_qgrams))});
  }
  std::printf("\nOne naive probe: %.3fs. Expected shape (paper): build "
              "cost grows with H and is\nhigher for Q+T_H than Q_H; the "
              "normalized cost amortizes after a small batch of\ninputs "
              "(paper: ~10; see bench_query_time for the per-input "
              "speedup).\n",
              naive_probe);

  // Parallel-build speedup (DESIGN.md 5f): the heaviest strategy, serial
  // vs FM_BUILD_THREADS workers (default 4). Each run uses a fresh
  // environment because rebuilding a strategy in place is AlreadyExists.
  // The output is byte-identical either way (CI's buildcheck enforces
  // it); only the wall clock may differ, and only on multi-core hosts.
  const int par_threads =
      static_cast<int>(EnvSize("FM_BUILD_THREADS", 4));
  EtiParams heavy;
  heavy.q = 4;
  heavy.signature_size = 3;
  heavy.index_tokens = true;
  std::printf("\nParallel build — %s, 1 vs %d thread(s)\n\n",
              heavy.StrategyName().c_str(), par_threads);
  PrintRow({"threads", "build(s)", "scan(s)", "sort(s)", "merge(s)",
            "spills"});
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  for (const int threads : {1, par_threads}) {
    FM_ASSIGN_OR_RETURN(BenchEnv fresh, MakeBenchEnv());
    FuzzyMatchConfig config;
    config.eti = heavy;
    ApplyHotPathEnvOverrides(&config);
    config.build_threads = threads;
    FM_ASSIGN_OR_RETURN(
        auto matcher,
        FuzzyMatcher::Build(fresh.db.get(), "customers", config));
    const EtiBuildStats& stats = matcher->build_stats();
    (threads == 1 ? serial_seconds : parallel_seconds) =
        stats.total_seconds;
    PrintRow({StringPrintf("%u", stats.build_threads),
              StringPrintf("%.2f", stats.total_seconds),
              StringPrintf("%.2f", stats.scan_seconds),
              StringPrintf("%.2f", stats.sort_seconds),
              StringPrintf("%.2f", stats.merge_seconds),
              StringPrintf("%llu", static_cast<unsigned long long>(
                                       stats.spilled_runs))});
  }
  if (parallel_seconds > 0.0) {
    std::printf("\nSpeedup: %.2fx with %d threads\n",
                serial_seconds / parallel_seconds, par_threads);
  }
  return Status::OK();
}

}  // namespace

int main() {
  const Status status = Run();
  DumpMetrics("bench_eti_build");
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
